"""Command-line interface: ``python -m repro``.

Subcommands:

* ``run BENCH``   — simulate one benchmark under one scheduler and print
  the summary metrics (``--json`` for machine-readable output;
  ``--metrics-out`` / ``--trace-out`` to export telemetry;
  ``--audit`` / ``--invariants`` for runtime guardrails;
  ``--checkpoint-period`` / ``--restore-from`` for snapshots — see
  docs/robustness.md);
* ``trace BENCH`` — run with full telemetry (interval metrics, request
  lifecycle trace, engine profile) and write a Chrome trace-event JSON
  loadable in Perfetto;
* ``compare BENCH`` — all schedulers on one benchmark;
* ``sweep``       — fill the result cache with a parallel
  (benchmark x scheduler x seed) sweep: worker pool, retries, live
  progress, resumable manifest, machine-readable throughput report;
  ``--spec FILE`` runs a declarative scenario spec instead of grid
  flags (docs/scenarios.md);
* ``scenario``    — work with the declarative scenario library
  (``run``/``list``/``validate``) — see docs/scenarios.md and the
  committed ``scenarios/`` directory;
* ``reproduce``   — regenerate the paper's tables and figures;
* ``fuzz``        — differential/metamorphic fuzzing campaign over random
  configs and workloads, with failure minimization and replayable repro
  artifacts (``--replay``) — see docs/robustness.md;
* ``bench``       — core hot-path throughput benchmark (events/sec and
  wall time per scheduler, single channel), written as
  ``BENCH_core.json`` and optionally gated against a committed baseline
  (``--baseline``/``--check``) — see docs/performance.md;
* ``accuracy``    — export the EXPERIMENTS.md paper-vs-measured table as
  ``results/accuracy.json`` for the dashboard and external tooling;
* ``history``     — inspect the append-only run-history store
  (``list``/``show``/``diff``) — see docs/observability.md;
* ``dashboard``   — render the self-contained static HTML dashboard
  (perf trajectory, scheduler comparison, paper accuracy, fuzz stats)
  from the run history;
* ``list``        — available benchmarks and schedulers.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import repro.idealized  # noqa: F401  (registers zero-div)
from repro import (
    ALL_PROFILES,
    SCHEDULERS,
    Scale,
    SimConfig,
    benchmark_names,
    build_benchmark,
    simulate,
    synthetic_trace,
)
from repro.analysis import format_table, run_all
from repro.analysis.runner import ExperimentRunner
from repro.analysis.sweep import run_sweep
from repro.core.overrides import (
    apply_overrides as apply_config_overrides,
    parse_assignment,
)
from repro.dram.validate import ProtocolViolationError
from repro.guardrails import (
    CheckpointError,
    GuardrailConfig,
    InvariantViolation,
    load_checkpoint,
    peek_checkpoint,
)
from repro.telemetry import TelemetryHub


def _trace(args, cfg):
    # Default kind resolves per benchmark: the modern suite (embgather,
    # graphsample) has no synthetic profile and runs algorithmically.
    kind = args.kind or (
        "synthetic" if args.benchmark in ALL_PROFILES else "algorithmic"
    )
    scale = Scale[(args.scale or "quick").upper()]
    seed = 1 if args.seed is None else args.seed
    if kind == "synthetic":
        try:
            profile = ALL_PROFILES[args.benchmark]
        except KeyError:
            raise ValueError(
                f"benchmark {args.benchmark!r} has no synthetic profile; "
                "use --kind algorithmic"
            ) from None
        return synthetic_trace(profile, cfg, seed=seed, scale=scale.factor)
    return build_benchmark(args.benchmark, cfg, scale, seed=seed)


def _benches_for_kind(kind: str) -> list[str]:
    """Default benchmark set per trace kind: synthetic sweeps only the
    profile-backed paper suites; algorithmic sweeps everything."""
    return sorted(ALL_PROFILES) if kind == "synthetic" else sorted(benchmark_names())


def _make_hub(args, force: bool = False) -> TelemetryHub | None:
    """A hub matching the telemetry flags, or None when everything is off."""
    want_trace = force or args.trace_out is not None
    want_sample = force or args.metrics_out is not None or want_trace
    want_profile = force or getattr(args, "profile", False)
    if not (want_trace or want_sample or want_profile):
        return None
    return TelemetryHub(
        sample_period_ns=args.metrics_period if want_sample else 0.0,
        trace=want_trace,
        profile=want_profile,
    )


def _report_run(stats, hub: TelemetryHub | None) -> None:
    """Wall-clock profiling summary, printed at the end of every run.

    Goes to stderr so ``--json`` / metrics output on stdout stays clean.
    """
    rate = stats.events_processed / stats.wall_seconds if stats.wall_seconds else 0.0
    print(
        f"[repro] {stats.events_processed} events in {stats.wall_seconds:.2f} s "
        f"({rate / 1000.0:.0f}k events/s)",
        file=sys.stderr,
    )
    if hub is not None and hub.profiler is not None:
        print(hub.profiler.format(), file=sys.stderr)


def _write_outputs(args, stats, hub: TelemetryHub | None) -> None:
    if getattr(args, "metrics_out", None):
        stats.write_metrics(args.metrics_out)
        print(f"[repro] interval metrics -> {args.metrics_out}", file=sys.stderr)
    if getattr(args, "trace_out", None) and hub is not None and hub.tracer is not None:
        hub.tracer.write(args.trace_out, stats.intervals)
        print(
            f"[repro] chrome trace -> {args.trace_out} "
            "(open at https://ui.perfetto.dev)",
            file=sys.stderr,
        )


def _check_run_flags(args) -> str | None:
    """Reject nonsensical ``run`` flag combinations (message, or None)."""
    telemetry = [
        flag
        for flag, on in (
            ("--metrics-out", args.metrics_out is not None),
            ("--trace-out", args.trace_out is not None),
            ("--profile", args.profile),
        )
        if on
    ]
    if args.checkpoint_period is not None and args.checkpoint_out is None:
        return "--checkpoint-period needs --checkpoint-out PATH"
    if args.checkpoint_out is not None and args.checkpoint_period is None:
        return "--checkpoint-out needs --checkpoint-period NS"
    if args.checkpoint_period is not None and telemetry:
        return (
            "checkpoints cannot carry telemetry state (live file handles); "
            f"drop {', '.join(telemetry)} or the checkpoint flags"
        )
    if args.restore_from is None:
        if args.benchmark is None:
            return "a benchmark is required (or --restore-from SNAPSHOT)"
        return None
    # --restore-from resumes a finished snapshot: the workload, seed and
    # scale are baked into it, so flags that would pick a different run
    # are contradictions, not modifiers.
    if args.benchmark is not None:
        return "--restore-from resumes a snapshot; drop the benchmark argument"
    for flag, given in (
        ("--seed", args.seed is not None),
        ("--scale", args.scale is not None),
        ("--kind", args.kind is not None),
        ("--scheduler", args.scheduler is not None),
    ):
        if given:
            return f"{flag} is baked into the snapshot; drop it with --restore-from"
    if args.audit or args.invariants:
        return (
            "--audit/--invariants cannot attach mid-run; the snapshot resumes "
            "with the guardrails it was taken with"
        )
    if telemetry:
        return f"telemetry cannot attach mid-run; drop {', '.join(telemetry)}"
    return None


def _guardrails_from_args(args) -> GuardrailConfig | None:
    if not (args.audit or args.invariants or args.checkpoint_period):
        return None
    return GuardrailConfig(
        invariants=args.invariants,
        audit=args.audit,
        checkpoint_period_ns=args.checkpoint_period or 0.0,
        checkpoint_path=args.checkpoint_out,
    )


def _print_summary(args, stats) -> None:
    if args.json:
        print(json.dumps(stats.summary(), indent=2))
    else:
        for key, value in stats.summary().items():
            print(f"{key:24s} {value:.4f}")


def _run_restored(args) -> int:
    """``run --restore-from``: rehydrate a snapshot and finish the run."""
    meta = peek_checkpoint(args.restore_from)
    print(
        f"[repro] restoring {args.restore_from}: scheduler={meta['scheduler']} "
        f"t={meta['now_ps'] / 1000:.1f}ns "
        f"({meta['warps_done']} warps done, "
        f"{meta['events_processed']} events processed)",
        file=sys.stderr,
    )
    system = load_checkpoint(args.restore_from)
    # A fresh guardrail config replaces the pickled one: pending faults
    # must not re-fire, and the caller may want new checkpoints.
    system.guardrails = _guardrails_from_args(args)
    system.injector = None
    stats = system.resume()
    _print_summary(args, stats)
    _report_run(stats, None)
    return 0


def _apply_overrides(cfg: SimConfig, overrides: list[str]) -> SimConfig:
    """Apply ``--set section.field=value`` edits at any nesting depth
    (``use_l1``, ``dram_timing.tras_ns``, ``gpu.l1.size_bytes``); bad
    paths report the valid field tree, and every edit re-validates
    through the dataclass constructors (:mod:`repro.core.overrides`)."""
    pairs: dict[str, object] = {}
    for item in overrides:
        key, value = parse_assignment(item)
        pairs[key] = value  # repeated --set of one key: last one wins
    return apply_config_overrides(cfg, pairs)


def cmd_run(args) -> int:
    problem = _check_run_flags(args)
    if problem:
        print(f"repro run: error: {problem}", file=sys.stderr)
        return 2
    try:
        if args.restore_from is not None:
            return _run_restored(args)
        # SimConfig.validate() runs at construction and on every --set
        # replace; surface its one-line physical-consistency errors as
        # usage errors, not tracebacks.
        try:
            cfg = SimConfig(scheduler=args.scheduler or "wg-w")
            cfg = _apply_overrides(cfg, args.set or [])
        except (ValueError, TypeError) as exc:
            print(f"repro run: invalid configuration: {exc}", file=sys.stderr)
            return 2
        try:
            trace = _trace(args, cfg)
        except ValueError as exc:
            print(f"repro run: error: {exc}", file=sys.stderr)
            return 2
        hub = _make_hub(args)
        stats = simulate(
            cfg, trace, telemetry=hub,
            guardrails=_guardrails_from_args(args),
        )
    except CheckpointError as exc:
        print(f"repro run: error: {exc}", file=sys.stderr)
        return 2
    except (InvariantViolation, ProtocolViolationError) as exc:
        print(f"repro run: guardrail tripped: {exc}", file=sys.stderr)
        return 1
    _print_summary(args, stats)
    _write_outputs(args, stats, hub)
    _report_run(stats, hub)
    return 0


def cmd_trace(args) -> int:
    if args.trace_out is None:
        args.trace_out = "trace.json"
    cfg = SimConfig(scheduler=args.scheduler)
    hub = _make_hub(args, force=True)
    stats = simulate(cfg, _trace(args, cfg), telemetry=hub)
    _write_outputs(args, stats, hub)
    _report_run(stats, hub)
    return 0


def cmd_compare(args) -> int:
    cfg = SimConfig()
    trace = _trace(args, cfg)
    rows = []
    base = None
    for sched in ("gmc", "wg", "wg-m", "wg-bw", "wg-w"):
        s = simulate(cfg.with_scheduler(sched), trace).summary()
        if base is None:
            base = s["ipc"]
        rows.append([sched, s["ipc"], s["ipc"] / base, s["effective_latency_ns"],
                     s["divergence_ns"], s["bandwidth_utilization"]])
    print(format_table(
        ["scheduler", "IPC", "vs GMC", "stall ns", "div ns", "bus util"],
        rows, title=args.benchmark,
    ))
    return 0


#: Schedulers the paper's evaluation sweeps (plus §VI-C's WAFCFS and the
#: Fig. 4 zero-divergence bound); SBWAS runs per-alpha with its own config.
SWEEP_SCHEDULERS = ("gmc", "wg", "wg-m", "wg-bw", "wg-w")


def _sweep_from_spec(args) -> int:
    """``sweep --spec FILE``: the grid comes from a scenario spec."""
    from repro.scenarios import SpecError, load_spec, run_scenario

    given = [
        flag
        for flag, value in (
            ("--benchmarks", args.benchmarks),
            ("--schedulers", args.schedulers),
            ("--scale", args.scale),
            ("--seeds", args.seeds),
            ("--kind", args.kind),
        )
        if value is not None
    ]
    if args.perfect:
        given.append("--perfect")
    if given:
        print(
            f"repro sweep: error: --spec carries the whole grid; drop "
            f"{', '.join(given)} (edit the spec instead)",
            file=sys.stderr,
        )
        return 2
    try:
        spec = load_spec(args.spec)
    except SpecError as exc:
        print(f"repro sweep: error: {exc}", file=sys.stderr)
        return 2
    try:
        result = run_scenario(
            spec,
            cache_dir=args.cache_dir,
            workers=args.workers,
            timeout_s=args.timeout,
            retries=args.retries,
            resume=args.resume,
            progress=lambda msg: print(msg, file=sys.stderr),
            cluster_dir=args.cluster_dir,
        )
    except RuntimeError as exc:  # failed jobs, already itemized
        print(f"repro sweep: error: {exc}", file=sys.stderr)
        return 1
    print(result.format())
    if args.bench_out:
        result.report.write_bench(args.bench_out)
        print(f"[sweep] throughput report -> {args.bench_out}", file=sys.stderr)
    return 0


def cmd_sweep(args) -> int:
    if args.spec is not None:
        return _sweep_from_spec(args)
    kind = args.kind or "synthetic"
    benchmarks = args.benchmarks or _benches_for_kind(kind)
    if kind == "synthetic":
        unprofiled = [b for b in benchmarks if b not in ALL_PROFILES]
        if unprofiled:
            print(
                f"repro sweep: error: no synthetic profile for "
                f"{', '.join(unprofiled)}; use --kind algorithmic",
                file=sys.stderr,
            )
            return 2
    runner = ExperimentRunner(
        scale=Scale[(args.scale or "quick").upper()],
        seeds=tuple(args.seeds or (1, 2)),
        kind=kind,
        cache_dir=args.cache_dir,
    )
    report = run_sweep(
        runner,
        benchmarks,
        args.schedulers or list(SWEEP_SCHEDULERS),
        perfect=args.perfect,
        workers=args.workers,
        timeout_s=args.timeout,
        retries=args.retries,
        resume=args.resume,
        progress=lambda msg: print(msg, file=sys.stderr),
        cluster_dir=args.cluster_dir,
    )
    if args.bench_out:
        report.write_bench(args.bench_out)
        print(f"[sweep] throughput report -> {args.bench_out}", file=sys.stderr)
    for res in report.failed:
        print(f"[sweep] FAILED {res.job.job_id}: {res.error}", file=sys.stderr)
    return 1 if report.n_failed else 0


def cmd_scenario(args) -> int:
    from repro.scenarios import (
        SpecError,
        find_specs,
        load_spec,
        run_scenario,
        validate_spec_file,
    )

    if args.action == "validate":
        paths: list[str] = []
        try:
            for target in args.paths:
                paths.extend(
                    find_specs(target) if os.path.isdir(target) else [target]
                )
        except SpecError as exc:
            print(f"repro scenario: error: {exc}", file=sys.stderr)
            return 2
        if not paths:
            print(
                f"repro scenario: error: no spec files under "
                f"{', '.join(args.paths)}",
                file=sys.stderr,
            )
            return 2
        n_bad = 0
        for path in paths:
            err = validate_spec_file(path)
            if err is None:
                print(f"[scenario] OK      {path}")
            else:
                n_bad += 1
                print(f"[scenario] INVALID {err}")
        print(
            f"[scenario] {len(paths) - n_bad}/{len(paths)} spec(s) valid",
            file=sys.stderr,
        )
        return 1 if n_bad else 0

    if args.action == "list":
        from repro.analysis import format_table

        try:
            paths = find_specs(args.dir)
        except SpecError as exc:
            print(f"repro scenario: error: {exc}", file=sys.stderr)
            return 2
        rows = []
        for path in paths:
            try:
                spec = load_spec(path)
            except SpecError:
                rows.append([os.path.basename(path), "INVALID", "-", "-", "-"])
                continue
            rows.append([
                spec.name, spec.preset, spec.workload.kind,
                str(spec.n_jobs), spec.description[:44],
            ])
        if not rows:
            print(f"[scenario] no specs under {args.dir}", file=sys.stderr)
            return 0
        print(format_table(
            ["name", "preset", "kind", "jobs", "description"], rows,
            title=f"scenario library ({args.dir})",
        ))
        return 0

    # run SPEC
    try:
        spec = load_spec(args.spec)
    except SpecError as exc:
        print(f"repro scenario: error: {exc}", file=sys.stderr)
        return 2
    print(
        f"[scenario] {spec.name}: preset {spec.preset}, "
        f"{spec.n_jobs} jobs at {args.scale or spec.scale} "
        f"(spec {spec.spec_hash()})",
        file=sys.stderr,
    )
    try:
        result = run_scenario(
            spec,
            cache_dir=args.cache_dir,
            workers=args.workers,
            resume=args.resume,
            scale=args.scale,
            progress=lambda msg: print(msg, file=sys.stderr),
            cluster_dir=args.cluster_dir,
        )
    except RuntimeError as exc:
        print(f"repro scenario: error: {exc}", file=sys.stderr)
        return 1
    print(result.format())
    if args.out:
        result.write(args.out)
        print(f"[scenario] results -> {args.out}", file=sys.stderr)
    return 0


def cmd_cluster(args) -> int:
    from repro.cluster import cli as cluster_cli

    return cluster_cli.run(args)


def cmd_reproduce(args) -> int:
    if args.workers > 0:
        # Warm the cache with one parallel sweep over the combinations the
        # figure drivers consume; the drivers then run from cache.
        runner = ExperimentRunner(
            scale=Scale[args.scale.upper()], seeds=tuple(args.seeds),
            kind=args.kind, cache_dir=args.cache_dir,
        )
        benches = _benches_for_kind(args.kind)
        run_sweep(
            runner, benches, (*SWEEP_SCHEDULERS, "wafcfs", "zero-div"),
            workers=args.workers, resume=True,
            progress=lambda msg: print(msg, file=sys.stderr),
        ).raise_on_failure()
        run_sweep(
            runner, benches, ("gmc",), perfect=True,
            workers=args.workers, resume=True,
            progress=lambda msg: print(msg, file=sys.stderr),
        ).raise_on_failure()
    results = run_all(
        scale=Scale[args.scale.upper()], seeds=tuple(args.seeds),
        kind=args.kind, cache_dir=args.cache_dir, verbose=True,
    )
    for res in results.values():
        print()
        print(res)
    return 0


def cmd_fuzz(args) -> int:
    from repro.fuzz import load_artifact, run_campaign, run_oracle
    from repro.fuzz.artifact import ArtifactError, config_from_dict, trace_from_json

    log = (lambda _msg: None) if args.quiet else (
        lambda msg: print(f"[fuzz] {msg}", file=sys.stderr)
    )
    if args.replay is not None:
        if args.iterations is not None or args.time_budget is not None:
            print("repro fuzz: error: --replay takes no campaign flags",
                  file=sys.stderr)
            return 2
        try:
            artifact = load_artifact(args.replay)
        except ArtifactError as exc:
            print(f"repro fuzz: error: {exc}", file=sys.stderr)
            return 2
        try:
            config = config_from_dict(artifact["config"])
        except (ValueError, TypeError, KeyError) as exc:
            print(f"repro fuzz: error: artifact config invalid: {exc}",
                  file=sys.stderr)
            return 2
        trace = trace_from_json(artifact["trace"])
        log(
            f"replaying {args.replay}: oracle={artifact['oracle']} "
            f"schedulers={','.join(artifact['schedulers'])} "
            f"config={artifact['config_hash']} "
            f"(campaign seed {artifact['campaign_seed']}, "
            f"case {artifact['case_index']})"
        )
        failure = run_oracle(
            artifact["oracle"], config, trace, artifact["schedulers"]
        )
        if failure is None:
            print(
                f"[fuzz] did NOT reproduce: oracle {artifact['oracle']} "
                "passed on this build (bug fixed, or artifact stale)",
                file=sys.stderr,
            )
            return 3
        print(f"[fuzz] reproduced: {failure}", file=sys.stderr)
        return 0

    if args.iterations is None and args.time_budget is None:
        print("repro fuzz: error: bound the campaign with --iterations "
              "and/or --time-budget (or use --replay)", file=sys.stderr)
        return 2
    report = run_campaign(
        seed=args.seed,
        iterations=args.iterations,
        time_budget_s=args.time_budget,
        schedulers=args.schedulers,
        artifact_dir=args.artifact_dir,
        do_minimize=not args.no_minimize,
        log=log,
    )
    verdict = "clean" if report.clean else f"{len(report.failures)} failure(s)"
    print(
        f"[fuzz] seed {report.campaign_seed}: {report.cases_run} cases, "
        f"{len(report.schedulers)} schedulers, {verdict} "
        f"({report.wall_seconds:.1f}s)",
        file=sys.stderr,
    )
    for failure in report.failures:
        where = f" -> {failure.artifact_path}" if failure.artifact_path else ""
        print(
            f"[fuzz] case {failure.case_index} [{failure.oracle}] "
            f"{failure.detail}{where}",
            file=sys.stderr,
        )
    return 0 if report.clean else 1


def cmd_bench(args) -> int:
    from repro.analysis.bench import (
        compare_reports,
        default_jobs,
        load_report,
        run_bench,
    )

    log = lambda msg: print(f"[bench] {msg}", file=sys.stderr)  # noqa: E731
    # Build the grid first: the baseline preflight below checks it cell
    # by cell, so both must exist before any measurement starts.
    try:
        jobs = default_jobs(
            quick=args.quick,
            schedulers=args.schedulers,
            scales=args.scales,
            bench=args.benchmark,
            seed=args.seed if args.seed is not None else 1,
            repeats=args.repeats,
        )
    except KeyError as exc:
        print(f"repro bench: error: unknown scale {exc}", file=sys.stderr)
        return 2
    # Preflight the baseline BEFORE measuring: a missing or malformed
    # reference should fail in milliseconds with a fix, not after the
    # full grid has burned minutes of CPU.
    baseline = None
    if args.baseline is not None:
        try:
            baseline = load_report(args.baseline)
        except FileNotFoundError:
            print(
                f"repro bench: error: baseline {args.baseline!r} does not "
                "exist.\n  Regenerate it from the reference checkout with\n"
                "    python -m repro bench --out "
                f"{args.baseline}\n"
                "  and commit the result (see docs/performance.md).",
                file=sys.stderr,
            )
            return 2
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(
                f"repro bench: error: baseline {args.baseline!r} is not a "
                f"usable core bench report: {exc}\n  Regenerate it with "
                f"`python -m repro bench --out {args.baseline}` and commit "
                "the result (see docs/performance.md).",
                file=sys.stderr,
            )
            return 2
        if args.check:
            # A gate run must be able to gate every cell it measures:
            # name the exact missing grid cells, not just the file, so
            # the fix (re-measure the reference with the same flags) is
            # obvious before minutes of CPU burn.
            have = {j["id"] for j in baseline.get("jobs", ())}
            missing = [j.job_id for j in jobs if j.job_id not in have]
            if missing:
                print(
                    f"repro bench: error: baseline {args.baseline!r} has no "
                    f"entry for {len(missing)} of {len(jobs)} grid cells:\n"
                    + "".join(f"    {jid}\n" for jid in missing)
                    + "  Regenerate it from the reference checkout with the "
                    "same grid flags\n    python -m repro bench --out "
                    f"{args.baseline}\n  and commit the result "
                    "(see docs/performance.md).",
                    file=sys.stderr,
                )
                return 2
    report = run_bench(jobs, progress=log)
    print(report.format())
    if args.out:
        report.write(args.out)
        log(f"report -> {args.out}")
    if baseline is None:
        return 0
    lines, regressions = compare_reports(
        report.to_dict(), baseline, tolerance=args.tolerance
    )
    for line in lines:
        log(line)
    if regressions:
        for msg in regressions:
            print(f"[bench] REGRESSION: {msg}", file=sys.stderr)
        return 1 if args.check else 0
    log(f"no regression beyond {args.tolerance:.0%} against {args.baseline}")
    return 0


def cmd_list(_args) -> int:
    from repro.dram.timing import DRAM_PRESETS
    from repro.workloads.suite import IRREGULAR_SUITE, MODERN_SUITE, REGULAR_SUITE

    print("irregular benchmarks:", ", ".join(IRREGULAR_SUITE))
    print("regular benchmarks:  ", ", ".join(REGULAR_SUITE))
    print("modern benchmarks:   ", ", ".join(MODERN_SUITE),
          "(algorithmic kind only)")
    print("schedulers:          ", ", ".join(sorted(SCHEDULERS)))
    print("dram presets:        ", ", ".join(sorted(DRAM_PRESETS)))
    return 0


def cmd_accuracy(args) -> int:
    from repro.analysis.experiments import write_accuracy

    doc = write_accuracy(args.out)
    pct = sum(1 for e in doc["entries"] if e["unit"] == "pct")
    print(
        f"[accuracy] {len(doc['entries'])} paper-vs-measured entries "
        f"({pct} percent-unit) -> {args.out}",
        file=sys.stderr,
    )
    return 0


def _history_store(args):
    import os

    from repro.history import default_store
    from repro.history.store import HistoryStore

    if getattr(args, "dir", None):
        return HistoryStore(args.dir)
    store = default_store()
    if not os.path.isdir(store.root):
        print(
            f"repro history: note: {store.root} does not exist yet — "
            "bench/sweep/fuzz runs create it (REPRO_HISTORY_DIR overrides)",
            file=sys.stderr,
        )
    return store


def _history_summary(record) -> str:
    p = record.payload if isinstance(record.payload, dict) else {}
    if record.kind == "bench":
        return (
            f"{p.get('jobs_total', '?')} jobs, "
            f"{float(p.get('events_per_sec') or 0) / 1000.0:.0f}k events/s"
        )
    if record.kind == "sweep":
        return (
            f"{p.get('jobs_total', '?')} jobs "
            f"({p.get('jobs_failed', 0)} failed), scale {p.get('scale', '?')}"
        )
    if record.kind == "fuzz":
        state = "clean" if p.get("clean") else f"{len(p.get('failures') or [])} failed"
        return f"{p.get('cases_run', '?')} cases, {state}"
    if record.kind == "accuracy":
        return f"{len(p.get('entries') or [])} entries"
    if record.kind == "benchmarks":
        return (
            f"{p.get('tests_collected', '?')} tests at {p.get('scale', '?')}, "
            f"{p.get('tests_failed', 0)} failed"
        )
    return f"{len(p)} payload keys"


def cmd_history(args) -> int:
    store = _history_store(args)

    if args.action == "list":
        records = store.records(args.kind, limit=args.limit)
        if not records:
            print("[history] no records", file=sys.stderr)
            return 0
        rows = [
            [r.record_id, r.created_utc,
             r.git_sha[:9] if r.git_sha != "unknown" else "-",
             f"{r.calibration_ops_per_sec / 1e6:.1f}M",
             _history_summary(r) + (" [INVALID]" if r.problems else "")]
            for r in records
        ]
        print(format_table(
            ["record", "created (UTC)", "git", "calib", "summary"], rows,
            title=f"run history ({store.root})",
        ))
        return 0

    if args.action == "show":
        record = store.get(args.record_id)
        if record is None:
            print(
                f"repro history: error: no record {args.record_id!r} in "
                f"{store.root} (try `repro history list`)",
                file=sys.stderr,
            )
            return 2
        print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
        if record.problems:
            print(
                f"[history] provenance problems: {'; '.join(record.problems)}",
                file=sys.stderr,
            )
        return 0

    # diff OLD NEW
    old, new = store.get(args.record_a), store.get(args.record_b)
    missing = [
        rid for rid, r in ((args.record_a, old), (args.record_b, new))
        if r is None
    ]
    if missing:
        print(
            f"repro history: error: no record {', '.join(map(repr, missing))} "
            f"in {store.root} (try `repro history list`)",
            file=sys.stderr,
        )
        return 2
    if old.kind == new.kind == "bench":
        from repro.analysis.bench import compare_reports

        lines, regressions = compare_reports(new.payload, old.payload)
        for line in lines:
            print(line)
        for msg in regressions:
            print(f"REGRESSION: {msg}")
        return 1 if regressions else 0
    if old.kind != new.kind:
        print(
            f"repro history: error: cannot diff {old.kind!r} against "
            f"{new.kind!r} records",
            file=sys.stderr,
        )
        return 2
    # Generic kinds: shallow scalar payload diff.
    keys = sorted(set(old.payload) | set(new.payload))
    for key in keys:
        a, b = old.payload.get(key), new.payload.get(key)
        if isinstance(a, (dict, list)) or isinstance(b, (dict, list)):
            if a != b:
                print(f"{key}: differs (structured; see `history show`)")
        elif a != b:
            print(f"{key}: {a} -> {b}")
    return 0


def cmd_dashboard(args) -> int:
    from repro.dashboard import build_dashboard
    from repro.history import DEFAULT_HISTORY_DIR
    import os

    history_dir = args.history_dir or os.environ.get(
        "REPRO_HISTORY_DIR", DEFAULT_HISTORY_DIR
    )
    build = build_dashboard(
        history_dir, args.out, accuracy_path=args.accuracy
    )
    print(build.summary(), file=sys.stderr)
    if args.check and not build.ok:
        print(
            "repro dashboard: error: build is hollow (see PROBLEM lines); "
            "run `python -m repro bench` / `python -m repro accuracy` to "
            "populate the history",
            file=sys.stderr,
        )
        return 1
    if args.open:
        import webbrowser

        webbrowser.open(f"file://{os.path.abspath(build.index_path)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)

    def common(p):
        # Defaults resolve to quick/1/synthetic in _trace; None here lets
        # ``run --restore-from`` tell "explicitly given" from "default".
        p.add_argument("--scale", default=None,
                       choices=[s.name.lower() for s in Scale],
                       help="workload scale (default quick)")
        p.add_argument("--seed", type=int, default=None,
                       help="trace RNG seed (default 1)")
        p.add_argument("--kind", default=None,
                       choices=["synthetic", "algorithmic"],
                       help="trace generator (default synthetic)")

    def positive_ns(text: str) -> float:
        period = float(text)
        if period <= 0:
            raise argparse.ArgumentTypeError(
                f"period must be > 0 ns, got {text}"
            )
        return period

    def telemetry_flags(p):
        p.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write interval metrics (JSON, or CSV for .csv)")
        p.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write a Chrome trace-event JSON (Perfetto)")
        p.add_argument("--metrics-period", type=positive_ns, default=100.0,
                       metavar="NS", help="sampling period in ns (default 100)")

    p_run = sub.add_parser("run", help="simulate one benchmark")
    p_run.add_argument("benchmark", nargs="?", default=None,
                       choices=sorted(benchmark_names()))
    p_run.add_argument("--scheduler", default=None, choices=sorted(SCHEDULERS),
                       help="memory scheduler (default wg-w)")
    common(p_run)
    telemetry_flags(p_run)
    p_run.add_argument("--set", action="append", metavar="FIELD=VALUE",
                       help="override a config field, e.g. "
                            "--set dram_timing.tras_ns=30 --set use_l1=false "
                            "(validated; bad combinations are rejected)")
    p_run.add_argument("--json", action="store_true",
                       help="print the summary as JSON instead of a table")
    p_run.add_argument("--profile", action="store_true",
                       help="attribute wall-clock time to model components")
    guard = p_run.add_argument_group(
        "runtime guardrails (docs/robustness.md)"
    )
    guard.add_argument("--invariants", action="store_true",
                       help="online invariant monitor: conservation, "
                            "occupancy, forward-progress watchdogs")
    guard.add_argument("--audit", action="store_true",
                       help="stream-audit every DRAM command against the "
                            "GDDR5 protocol rules; abort on violation")
    guard.add_argument("--checkpoint-period", type=positive_ns, default=None,
                       metavar="NS",
                       help="snapshot the full simulator state every NS of "
                            "simulated time (needs --checkpoint-out)")
    guard.add_argument("--checkpoint-out", default=None, metavar="PATH",
                       help="where periodic snapshots are written "
                            "(atomically overwritten in place)")
    guard.add_argument("--restore-from", default=None, metavar="PATH",
                       help="resume a snapshot to completion instead of "
                            "starting a benchmark")
    p_run.set_defaults(fn=cmd_run)

    p_tr = sub.add_parser(
        "trace", help="run one benchmark with full telemetry enabled"
    )
    p_tr.add_argument("benchmark", choices=sorted(benchmark_names()))
    p_tr.add_argument("--scheduler", default="wg-w", choices=sorted(SCHEDULERS))
    common(p_tr)
    telemetry_flags(p_tr)
    p_tr.set_defaults(fn=cmd_trace)

    p_cmp = sub.add_parser("compare", help="all paper schedulers on a benchmark")
    p_cmp.add_argument("benchmark", choices=sorted(benchmark_names()))
    common(p_cmp)
    p_cmp.set_defaults(fn=cmd_compare)

    p_sw = sub.add_parser(
        "sweep", help="parallel (benchmark x scheduler x seed) cache-filling sweep"
    )
    # Grid flags default to None so --spec can reject explicit ones; the
    # effective defaults (kind-aware benchmark set, gmc + WG family,
    # quick, seeds 1 2) resolve in cmd_sweep.
    p_sw.add_argument("--spec", default=None, metavar="FILE",
                      help="run a declarative scenario spec instead of "
                           "grid flags (docs/scenarios.md)")
    p_sw.add_argument("--benchmarks", nargs="+", metavar="BENCH",
                      default=None, choices=sorted(benchmark_names()),
                      help="benchmarks to sweep (default: all with a "
                           "profile for the kind)")
    p_sw.add_argument("--schedulers", nargs="+", metavar="SCHED",
                      default=None, choices=sorted(SCHEDULERS),
                      help="schedulers to sweep (default: gmc + WG family)")
    p_sw.add_argument("--scale", default=None,
                      choices=[s.name.lower() for s in Scale])
    p_sw.add_argument("--seeds", type=int, nargs="+", default=None)
    p_sw.add_argument("--kind", default=None,
                      choices=["synthetic", "algorithmic"])
    p_sw.add_argument("--cache-dir", default=".repro-results")
    p_sw.add_argument("--workers", type=int, default=4,
                      help="worker processes (0 = run inline)")
    p_sw.add_argument("--resume", action="store_true",
                      help="skip jobs the sweep manifest already marks done")
    p_sw.add_argument("--timeout", type=float, default=None, metavar="S",
                      help="per-job timeout in seconds (default: none)")
    p_sw.add_argument("--retries", type=int, default=1,
                      help="resubmissions per failed job (default 1)")
    p_sw.add_argument("--perfect", action="store_true",
                      help="apply the perfect-coalescing transform (Fig. 4)")
    p_sw.add_argument("--bench-out", default="BENCH_sweep.json", metavar="PATH",
                      help="machine-readable throughput report "
                           "(default BENCH_sweep.json; '' to skip)")
    p_sw.add_argument("--cluster-dir", default=None, metavar="DIR",
                      help="drain through the fault-tolerant distributed "
                           "backend rooted at DIR (docs/distributed.md); "
                           "omitted = the ordinary local pool")
    p_sw.set_defaults(fn=cmd_sweep)

    p_sc = sub.add_parser(
        "scenario",
        help="declarative scenario specs: run/list/validate (docs/scenarios.md)",
    )
    sc_sub = p_sc.add_subparsers(dest="action", required=True)
    sc_run = sc_sub.add_parser("run", help="execute one spec end to end")
    sc_run.add_argument("spec", metavar="SPEC", help="spec file (.yaml/.json)")
    sc_run.add_argument("--cache-dir", default=".repro-results")
    sc_run.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: the spec's; 0 = inline)")
    sc_run.add_argument("--resume", action="store_true",
                        help="skip jobs the sweep manifest already marks done")
    sc_run.add_argument("--scale", default=None,
                        choices=[s.name.lower() for s in Scale],
                        help="override the spec's scale (e.g. tiny for CI)")
    sc_run.add_argument("--out", default=None, metavar="PATH",
                        help="write the full result document as JSON")
    sc_run.add_argument("--cluster-dir", default=None, metavar="DIR",
                        help="drain through the distributed backend rooted "
                             "at DIR (docs/distributed.md)")
    sc_list = sc_sub.add_parser("list", help="tabulate a spec directory")
    sc_list.add_argument("dir", nargs="?", default="scenarios",
                         help="spec directory (default scenarios/)")
    sc_val = sc_sub.add_parser(
        "validate",
        help="validate spec files/directories; exit 1 on any invalid spec",
    )
    sc_val.add_argument("paths", nargs="+", metavar="PATH",
                        help="spec files or directories of specs")
    p_sc.set_defaults(fn=cmd_scenario)

    p_cl = sub.add_parser(
        "cluster",
        help="fault-tolerant distributed sweep backend "
             "(lease-based workers; docs/distributed.md)",
    )
    cl_sub = p_cl.add_subparsers(dest="action", required=True)
    cl_init = cl_sub.add_parser(
        "init", help="expand a grid or spec into a run directory"
    )
    cl_init.add_argument("dir", metavar="DIR", help="run directory to create")
    cl_init.add_argument("--spec", default=None, metavar="FILE",
                         help="take the grid from a scenario spec")
    cl_init.add_argument("--benchmarks", nargs="+", metavar="BENCH",
                         default=None, choices=sorted(benchmark_names()))
    cl_init.add_argument("--schedulers", nargs="+", metavar="SCHED",
                         default=None, choices=sorted(SCHEDULERS))
    cl_init.add_argument("--scale", default=None,
                         choices=[s.name.lower() for s in Scale])
    cl_init.add_argument("--seeds", type=int, nargs="+", default=None)
    cl_init.add_argument("--kind", default=None,
                         choices=["synthetic", "algorithmic"])
    cl_init.add_argument("--perfect", action="store_true")
    cl_init.add_argument("--cache-dir", default=".repro-results")
    cl_init.add_argument("--retries", type=int, default=None,
                         help="attempts after the first failure "
                              "(default: the spec's, else 1)")
    cl_init.add_argument("--heartbeat", type=float, default=2.0, metavar="S",
                         help="lease renewal period (default 2s)")
    cl_init.add_argument("--lease-expiry", type=float, default=10.0,
                         metavar="S",
                         help="heartbeat age after which any worker may "
                              "reclaim a job (default 10s)")
    cl_init.add_argument("--quarantine-owners", type=int, default=3,
                         metavar="N",
                         help="distinct failing workers before a job is "
                              "quarantined as poison (default 3)")
    cl_init.add_argument("--backoff-seed", type=int, default=0,
                         help="seed for the deterministic retry jitter")
    cl_worker = cl_sub.add_parser(
        "worker", help="run one agent until the sweep is terminal"
    )
    cl_worker.add_argument("dir", metavar="DIR")
    cl_worker.add_argument("--worker-id", default=None,
                           help="stable identity (default host-pid)")
    cl_worker.add_argument("--max-jobs", type=int, default=None,
                           help="stop after claiming this many jobs")
    cl_worker.add_argument("--no-wait", action="store_true",
                           help="exit when nothing is claimable instead of "
                                "polling until the sweep is terminal")
    cl_worker.add_argument("--stats-out", default=None, metavar="PATH",
                           help="also write the stats JSON to a file")
    cl_drain = cl_sub.add_parser(
        "drain", help="spawn N local workers, wait, compact the manifest"
    )
    cl_drain.add_argument("dir", metavar="DIR")
    cl_drain.add_argument("--workers", type=int, default=2,
                          help="worker processes to spawn (default 2)")
    cl_status = cl_sub.add_parser(
        "status", help="per-job states derived from the store"
    )
    cl_status.add_argument("dir", metavar="DIR")
    cl_status.add_argument("--json", action="store_true")
    p_cl.set_defaults(fn=cmd_cluster)

    p_rep = sub.add_parser("reproduce", help="regenerate the paper's evaluation")
    p_rep.add_argument("--scale", default="quick",
                       choices=[s.name.lower() for s in Scale])
    p_rep.add_argument("--seeds", type=int, nargs="+", default=[1, 2])
    p_rep.add_argument("--kind", default="synthetic",
                       choices=["synthetic", "algorithmic"])
    p_rep.add_argument("--cache-dir", default=".repro-results")
    p_rep.add_argument("--workers", type=int, default=0,
                       help="prefetch the sweep with N worker processes first")
    p_rep.set_defaults(fn=cmd_reproduce)

    p_fz = sub.add_parser(
        "fuzz",
        help="differential/metamorphic fuzzing with failure minimization",
    )
    p_fz.add_argument("--iterations", type=int, default=None, metavar="N",
                      help="number of cases to draw (deterministic in --seed)")
    p_fz.add_argument("--time-budget", type=float, default=None, metavar="S",
                      help="stop drawing new cases after S wall-clock seconds")
    p_fz.add_argument("--seed", type=int, default=0,
                      help="campaign seed; fixes the whole case stream "
                           "(default 0)")
    p_fz.add_argument("--schedulers", nargs="+", metavar="SCHED", default=None,
                      choices=sorted(SCHEDULERS),
                      help="schedulers under test (default: every "
                           "registered policy)")
    p_fz.add_argument("--artifact-dir", default="fuzz-artifacts", metavar="DIR",
                      help="where minimized repro artifacts are written "
                           "(default fuzz-artifacts/)")
    p_fz.add_argument("--no-minimize", action="store_true",
                      help="write failures as-is, skip delta debugging")
    p_fz.add_argument("--replay", default=None, metavar="ARTIFACT",
                      help="re-run one repro artifact's oracle instead of "
                           "a campaign (exit 0 = reproduced, 3 = not)")
    p_fz.add_argument("--quiet", action="store_true",
                      help="suppress per-case progress on stderr")
    p_fz.set_defaults(fn=cmd_fuzz)

    p_b = sub.add_parser(
        "bench",
        help="core hot-path throughput benchmark (docs/performance.md)",
    )
    p_b.add_argument("--quick", action="store_true",
                     help="CI profile: paper schedulers, TINY scale, 2 repeats")
    p_b.add_argument("--benchmark", default="bfs",
                     choices=sorted(benchmark_names()),
                     help="workload to measure (default bfs)")
    p_b.add_argument("--schedulers", nargs="+", metavar="SCHED", default=None,
                     choices=sorted(SCHEDULERS),
                     help="schedulers to measure (default: --quick set or all)")
    p_b.add_argument("--scales", nargs="+", metavar="SCALE", default=None,
                     choices=[s.name.lower() for s in Scale],
                     help="scales to measure (default: tiny+small, or tiny "
                          "with --quick)")
    p_b.add_argument("--seed", type=int, default=None,
                     help="trace RNG seed (default 1)")
    p_b.add_argument("--repeats", type=int, default=None,
                     help="runs per job; best wall time is reported")
    p_b.add_argument("--out", default="BENCH_core.json", metavar="PATH",
                     help="machine-readable report (default BENCH_core.json; "
                          "'' to skip)")
    p_b.add_argument("--baseline", default=None, metavar="PATH",
                     help="compare against a committed BENCH_core report")
    p_b.add_argument("--check", action="store_true",
                     help="exit 1 when normalized events/sec regresses more "
                          "than --tolerance below the baseline")
    p_b.add_argument("--tolerance", type=float, default=0.15,
                     help="allowed fractional regression (default 0.15)")
    p_b.set_defaults(fn=cmd_bench)

    p_acc = sub.add_parser(
        "accuracy",
        help="export EXPERIMENTS.md paper-vs-measured numbers as JSON",
    )
    p_acc.add_argument("--out", default="results/accuracy.json", metavar="PATH",
                       help="export path (default results/accuracy.json)")
    p_acc.set_defaults(fn=cmd_accuracy)

    p_h = sub.add_parser(
        "history", help="inspect the run-history store (docs/observability.md)"
    )
    p_h.add_argument("--dir", default=None, metavar="DIR",
                     help="history directory (default results/history or "
                          "$REPRO_HISTORY_DIR)")
    h_sub = p_h.add_subparsers(dest="action", required=True)
    h_list = h_sub.add_parser("list", help="tabulate stored records")
    h_list.add_argument("--kind", default=None,
                        help="only one record kind (bench, sweep, fuzz, ...)")
    h_list.add_argument("--limit", type=int, default=None, metavar="N",
                        help="newest N records only")
    h_show = h_sub.add_parser("show", help="print one record as JSON")
    h_show.add_argument("record_id", metavar="RECORD",
                        help="record id, e.g. bench-0003")
    h_diff = h_sub.add_parser(
        "diff", help="compare two records (bench: normalized throughput)"
    )
    h_diff.add_argument("record_a", metavar="OLD")
    h_diff.add_argument("record_b", metavar="NEW")
    p_h.set_defaults(fn=cmd_history)

    p_d = sub.add_parser(
        "dashboard",
        help="build the static HTML dashboard from the run history",
    )
    p_d.add_argument("--out", default="dashboard", metavar="DIR",
                     help="output directory (default dashboard/)")
    p_d.add_argument("--history-dir", default=None, metavar="DIR",
                     help="history to render (default results/history or "
                          "$REPRO_HISTORY_DIR)")
    p_d.add_argument("--accuracy", default=None, metavar="PATH",
                     help="accuracy export (default <history>/../accuracy.json)")
    p_d.add_argument("--check", action="store_true",
                     help="exit 1 when a required figure has no data")
    p_d.add_argument("--open", action="store_true",
                     help="open the built page in a browser")
    p_d.set_defaults(fn=cmd_dashboard)

    p_list = sub.add_parser("list", help="available benchmarks and schedulers")
    p_list.set_defaults(fn=cmd_list)

    args = ap.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
