"""Modern irregular workloads beyond the paper's Table III.

The paper predates the deep-learning recommendation and GNN kernels that
dominate today's irregular GPU traffic; these two generators extend the
suite with their memory signatures so the scenario library
(``scenarios/``) can evaluate the warp-aware schedulers on them:

``embedding_gather_trace`` — DLRM-style embedding-bag lookup
(SparseLengthsSum): each lane owns one sample and walks its pooled
lookup indices, so every pooling step gathers 32 Zipf-distributed rows
from a table far larger than the caches.  Hot rows give some intra-warp
row-buffer locality; the cold tail gives the latency divergence.

``graph_sample_trace`` — GraphSAGE-style neighborhood sampling: each
lane expands one seed vertex through a two-level fanout over a CSR
graph (row-pointer gathers, then scattered column reads), the access
pattern of GNN mini-batch samplers.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SimConfig
from repro.workloads.algorithms.graphs import random_csr
from repro.workloads.builder import Layout, TraceBuilder
from repro.workloads.trace import KernelTrace

__all__ = ["embedding_gather_trace", "graph_sample_trace"]


def _zipf_rows(rng: np.random.Generator, n_rows: int, size: int, a: float) -> np.ndarray:
    """Zipf-distributed row ids folded into [0, n_rows): recommendation
    embedding accesses are famously skewed toward a small hot set."""
    raw = rng.zipf(a, size=size)
    return (raw - 1) % n_rows


def embedding_gather_trace(
    config: SimConfig,
    n_rows: int = 400_000,
    emb_dim: int = 32,
    pooling: int = 12,
    n_tables: int = 4,
    zipf_a: float = 1.2,
    seed: int = 41,
    max_warps: int = 1300,
) -> KernelTrace:
    """Embedding-table gather with per-bag pooling (DLRM SparseLengthsSum).

    One warp processes 32 bags of one table; each pooling step gathers
    the first element of 32 different embedding rows (``emb_dim`` 4B
    elements apart, i.e. one 128B line per row at the default dim).
    """
    rng = np.random.default_rng(seed)
    lay = Layout()
    a_tables = [
        lay.alloc(f"table{t}", n_rows * emb_dim) for t in range(n_tables)
    ]
    n_bags = max_warps * 32
    a_ids = lay.alloc("ids", n_bags * pooling)
    a_out = lay.alloc("out", n_bags * emb_dim)

    tb = TraceBuilder("embgather", config.gpu.num_sms, config.gpu.warp_size)
    # Per-bag pooling lengths: variable, like real request batches.
    lengths = np.clip(
        rng.poisson(pooling * 0.75, size=n_bags), 1, pooling
    ).astype(np.int64)
    bag = 0
    while bag < n_bags and tb.num_warps < max_warps:
        bags = np.arange(bag, min(bag + 32, n_bags))
        table = a_tables[(bag // 32) % n_tables]
        wb = tb.new_warp()
        # Coalesced read of this warp's first lookup-id block.
        wb.compute(4).load_stream(a_ids, int(bags[0]) * pooling)
        deg = lengths[bags]
        for k in range(int(deg.max(initial=0))):
            active = deg > k
            if not active.any():
                break
            rows = _zipf_rows(rng, n_rows, len(bags), zipf_a)
            # 32 scattered table rows, one per lane: the MAI source.
            wb.compute(2).load_gather(
                table,
                [
                    int(r) * emb_dim if a else None
                    for r, a in zip(rows, active)
                ],
            )
        # One pooled vector per bag: lanes write emb_dim elements apart.
        wb.compute(8).store_gather(a_out, (bags * emb_dim).tolist())
        bag += 32
    return tb.build()


def graph_sample_trace(
    config: SimConfig,
    n_vertices: int = 200_000,
    avg_degree: float = 12.0,
    fanout: tuple[int, int] = (8, 4),
    seed: int = 43,
    max_warps: int = 1300,
) -> KernelTrace:
    """Two-hop neighborhood sampling over a CSR graph (GraphSAGE-style).

    Lanes own seed vertices drawn uniformly (a shuffled mini-batch, so
    even the row-pointer reads are gathers); each hop samples ``fanout``
    neighbors per frontier vertex via scattered column-array reads.
    """
    rng = np.random.default_rng(seed)
    row_ptr, col = random_csr(n_vertices, avg_degree, rng, locality=0.25)
    m = len(col)
    lay = Layout()
    a_rowptr = lay.alloc("row_ptr", n_vertices + 1)
    a_col = lay.alloc("col", m)
    a_seeds = lay.alloc("seeds", max_warps * 32)
    a_out = lay.alloc("sampled", max_warps * 32 * (fanout[0] * (1 + fanout[1])))

    tb = TraceBuilder("graphsample", config.gpu.num_sms, config.gpu.warp_size)
    out_cursor = 0
    for base in range(0, max_warps * 32, 32):
        if tb.num_warps >= max_warps:
            break
        seeds = rng.integers(0, n_vertices, size=32)
        wb = tb.new_warp()
        wb.compute(4).load_stream(a_seeds, base)
        # Hop 1: row_ptr[v] and row_ptr[v+1] for shuffled seeds — gathers.
        wb.compute(1).load_gather(a_rowptr, seeds.tolist())
        wb.load_gather(a_rowptr, (seeds + 1).tolist())
        deg1 = np.maximum(row_ptr[seeds + 1] - row_ptr[seeds], 1)
        for r in range(fanout[0]):
            # One sampled neighbor per lane per round: scattered col reads.
            off = rng.integers(0, 1 << 30, size=32) % deg1
            eidx = np.minimum(row_ptr[seeds] + off, m - 1)
            wb.compute(2).load_gather(a_col, eidx.tolist())
            hop1 = col[eidx]
            # Hop 2: expand this round's frontier by fanout[1].
            wb.compute(1).load_gather(a_rowptr, hop1.tolist())
            wb.load_gather(a_rowptr, (hop1 + 1).tolist())
            deg2 = np.maximum(row_ptr[hop1 + 1] - row_ptr[hop1], 1)
            for _ in range(fanout[1]):
                off2 = rng.integers(0, 1 << 30, size=32) % deg2
                eidx2 = np.minimum(row_ptr[hop1] + off2, m - 1)
                wb.compute(2).load_gather(a_col, eidx2.tolist())
        wb.compute(6)
        wb.store_stream(a_out, out_cursor)
        out_cursor += 32
    return tb.build()
