"""Media/dynamic-programming workloads: sad (Parboil) and nw (Rodinia).

``sad`` (sum of absolute differences) streams reference and candidate
macroblock rows with strong row-buffer locality but writes a dense result
cube — write intensity is what stresses the drain machinery here.

``nw`` (Needleman-Wunsch) walks the DP matrix in anti-diagonal wavefronts:
each cell reads its west/north neighbors (strided by the matrix width, so
lanes touch several rows) and writes every cell it computes — the paper
singles out nw as a WG-W winner (high write intensity *and* many stalled
unit-size groups).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SimConfig
from repro.workloads.builder import Layout, TraceBuilder
from repro.workloads.trace import KernelTrace

__all__ = ["sad_trace", "nw_trace"]


def sad_trace(
    config: SimConfig,
    frame_w: int = 704,
    frame_h: int = 480,
    block: int = 16,
    n_candidates: int = 6,
    seed: int = 43,
    max_warps: int = 1300,
) -> KernelTrace:
    """Parboil sad: per-macroblock search over candidate offsets."""
    rng = np.random.default_rng(seed)
    n_pix = frame_w * frame_h
    blocks_x = frame_w // block
    blocks_y = frame_h // block
    lay = Layout()
    a_ref = lay.alloc("reference", n_pix)
    a_cur = lay.alloc("current", n_pix)
    a_sad = lay.alloc("sad_results", blocks_x * blocks_y * n_candidates * 8)

    tb = TraceBuilder("sad", config.gpu.num_sms, config.gpu.warp_size)
    warps_emitted = 0
    for by in range(blocks_y):
        for bx in range(blocks_x):
            if warps_emitted >= max_warps:
                return tb.build()
            wb = tb.new_warp()
            warps_emitted += 1
            origin = (by * block) * frame_w + bx * block
            mb = by * blocks_x + bx
            # current macroblock rows: streaming, strong row locality
            for r in range(0, block, 4):
                wb.compute(2).load_stream(a_cur, origin + r * frame_w)
            for c in range(n_candidates):
                dx = int(rng.integers(-8, 9))
                dy = int(rng.integers(-8, 9))
                cand = origin + dy * frame_w + dx
                cand = max(0, min(n_pix - 64, cand))
                for r in range(0, block, 8):
                    # candidate rows: lanes split across two misaligned
                    # image rows (the 2D access that resists coalescing)
                    idx = [cand + (r + i // 16) * frame_w + i % 16 for i in range(32)]
                    wb.compute(2).load_gather(a_ref, idx)
                wb.compute(8)
                # dense result writes: one SAD vector per candidate
                wb.store_stream(a_sad, (mb * n_candidates + c) * 8)
            # macroblock result flush: the Parboil kernel writes the whole
            # per-block SAD cube at the end (write-heavy phase)
            wb.store_stream(a_sad, mb * n_candidates * 8)
    return tb.build()


def nw_trace(
    config: SimConfig,
    n: int = 2048,
    tile: int = 32,
    seed: int = 47,
    max_warps: int = 1400,
) -> KernelTrace:
    """Rodinia Needleman-Wunsch: anti-diagonal DP wavefront over an n x n
    score matrix (one warp per 32-cell diagonal chunk of a tile)."""
    rng = np.random.default_rng(seed)
    lay = Layout()
    a_matrix = lay.alloc("score_matrix", n * n)
    a_seq1 = lay.alloc("sequence1", n)
    a_seq2 = lay.alloc("sequence2", n)
    a_penalty = lay.alloc("blosum", 24 * 24)

    tb = TraceBuilder("nw", config.gpu.num_sms, config.gpu.warp_size)
    tiles = n // tile
    warps_emitted = 0
    # Process tiles along anti-diagonals (the Rodinia schedule).
    for d in range(2 * tiles - 1):
        for ty in range(max(0, d - tiles + 1), min(tiles, d + 1)):
            tx = d - ty
            if warps_emitted >= max_warps:
                return tb.build()
            wb = tb.new_warp()
            warps_emitted += 1
            r0, c0 = ty * tile, tx * tile
            # sequence chars for the tile: coalesced
            wb.compute(4).load_stream(a_seq1, r0)
            wb.load_stream(a_seq2, c0)
            wb.load_stream(a_penalty, int(rng.integers(0, 24 * 24 - 32)))
            # wavefront inside the tile: west column (stride n -> one
            # request per lane-group of rows) and north row (coalesced)
            west = [(r0 + i) * n + c0 - 1 if c0 > 0 else (r0 + i) * n for i in range(32)]
            wb.compute(2).load_gather(a_matrix, west)
            north = (r0 - 1) * n + c0 if r0 > 0 else r0 * n + c0
            wb.load_stream(a_matrix, north)
            # compute the tile, writing one strided column chunk per step
            for step in range(0, tile, 8):
                wb.compute(6)
                cells = [(r0 + i) * n + c0 + step for i in range(32)]
                wb.store_gather(a_matrix, cells)
    return tb.build()
