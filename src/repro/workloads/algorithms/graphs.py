"""Graph workloads: bfs, sssp (Lonestar/Rodinia), bh, sp (LonestarGPU).

Each generator *runs the algorithm on the host* over a synthetic input and
emits the per-lane addresses its GPU kernel would issue, so the memory
access irregularity is genuine: frontier-dependent gathers, neighbor-array
walks, tree descents and factor-graph message exchanges.

Layout note: arrays are placed by the bump allocator, so spatially adjacent
elements land in the same DRAM rows exactly as a real allocation would.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SimConfig
from repro.workloads.builder import Layout, TraceBuilder
from repro.workloads.trace import KernelTrace

__all__ = ["random_csr", "bfs_trace", "sssp_trace", "bh_trace", "sp_trace"]


def random_csr(
    n: int, avg_degree: float, rng: np.random.Generator, locality: float = 0.3
) -> tuple[np.ndarray, np.ndarray]:
    """Random directed graph in CSR form with skewed degrees.

    ``locality`` is the fraction of edges pointing near their source —
    real graphs (meshes, road networks) have some, which gives warps their
    ~30% intra-warp row locality.
    """
    degrees = np.clip(
        rng.lognormal(mean=np.log(max(avg_degree, 1.0)), sigma=0.5, size=n), 1, 8 * avg_degree
    ).astype(np.int64)
    row_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=row_ptr[1:])
    m = int(row_ptr[-1])
    col = np.empty(m, dtype=np.int64)
    local = rng.random(m) < locality
    src = np.repeat(np.arange(n), degrees)
    near = (src + rng.integers(-40, 41, size=m)) % n
    far = rng.integers(0, n, size=m)
    col[:] = np.where(local, near, far)
    return row_ptr, col


def _edge_steps(deg: np.ndarray, cap: int) -> int:
    return int(min(cap, deg.max(initial=0)))


def bfs_trace(
    config: SimConfig,
    n_vertices: int = 150_000,
    avg_degree: float = 5.0,
    seed: int = 11,
    max_edge_steps: int = 6,
    max_frontier_warps: int = 1200,
    n_sources: int = 64,
) -> KernelTrace:
    """Level-synchronous BFS (Rodinia bfs): one thread per frontier vertex.

    Multiple sources (benchmark-harness style) make the frontier dense
    quickly, so the emitted warps reflect the steady-state levels rather
    than the trivial first hops.
    """
    rng = np.random.default_rng(seed)
    row_ptr, col = random_csr(n_vertices, avg_degree, rng, locality=0.7)
    lay = Layout()
    a_frontier = lay.alloc("frontier", n_vertices)
    a_rowptr = lay.alloc("row_ptr", n_vertices + 1)
    a_col = lay.alloc("col_idx", len(col))
    a_dist = lay.alloc("dist", n_vertices)

    tb = TraceBuilder("bfs", config.gpu.num_sms, config.gpu.warp_size)
    # Rodinia's vertex-centric kernel: one thread per vertex, every level;
    # threads whose vertex is not in the frontier mask off.  Warps over
    # consecutive vertex ids -> coalesced frontier/row_ptr reads; the MAI
    # comes from the col_idx walks and dist[neighbor] gathers.
    in_frontier = np.zeros(n_vertices, dtype=bool)
    sources = rng.integers(0, n_vertices, size=n_sources)
    in_frontier[sources] = True
    dist = np.full(n_vertices, -1, dtype=np.int64)
    dist[sources] = 0
    warps_emitted = 0
    level = 0
    while in_frontier.any() and warps_emitted < max_frontier_warps:
        next_frontier = np.zeros(n_vertices, dtype=bool)
        lanes_per_block = np.add.reduceat(in_frontier, np.arange(0, n_vertices, 32))
        active_blocks = np.flatnonzero(lanes_per_block)
        # Spend the warp budget on steady-state levels: while the frontier
        # is still thin (a lane or two per warp), expand it without
        # emitting trace warps — real benchmark harnesses skip the trivial
        # warm-up hops the same way.
        emit = bool(len(active_blocks)) and lanes_per_block[active_blocks].mean() >= 3.0
        for blk in active_blocks:
            vs = np.arange(blk * 32, min(blk * 32 + 32, n_vertices))
            mask = in_frontier[vs]
            wb = None
            if emit and warps_emitted < max_frontier_warps:
                wb = tb.new_warp()
                warps_emitted += 1
                # frontier flags + row_ptr: consecutive ids, coalesced
                wb.compute(6).load_stream(a_frontier, int(vs[0]))
                wb.compute(2).load_stream(a_rowptr, int(vs[0]))
            deg = np.where(mask, row_ptr[vs + 1] - row_ptr[vs], 0)
            steps = _edge_steps(deg, max_edge_steps)
            for k in range(steps):
                active = deg > k
                if not active.any():
                    break
                eidx = np.minimum(row_ptr[vs] + k, len(col) - 1)
                nbr = col[eidx]
                if wb is not None:
                    # col_idx[e]: active lanes walk their adjacency runs
                    wb.compute(2).load_gather(
                        a_col, [int(e) if a else None for e, a in zip(eidx, active)]
                    )
                    # dist[neighbor]: the data-dependent gather (highest MAI)
                    wb.compute(1).load_gather(
                        a_dist, [int(x) if a else None for x, a in zip(nbr, active)]
                    )
                discovered = []
                for x, a in zip(nbr, active):
                    if a and dist[x] < 0:
                        dist[x] = level + 1
                        next_frontier[x] = True
                        discovered.append(int(x))
                    else:
                        discovered.append(None)
                if wb is not None and any(d is not None for d in discovered):
                    wb.store_gather(a_dist, discovered)
            if wb is not None:
                wb.compute(4)
        in_frontier = next_frontier
        level += 1
    return tb.build()


def sssp_trace(
    config: SimConfig,
    n_vertices: int = 120_000,
    avg_degree: float = 5.0,
    seed: int = 13,
    rounds: int = 2,
    max_edge_steps: int = 6,
    max_warps: int = 1400,
) -> KernelTrace:
    """Bellman-Ford-style SSSP (LonestarGPU): edge relaxations with writes."""
    rng = np.random.default_rng(seed)
    row_ptr, col = random_csr(n_vertices, avg_degree, rng, locality=0.45)
    weights = rng.integers(1, 16, size=len(col))
    lay = Layout()
    a_rowptr = lay.alloc("row_ptr", n_vertices + 1)
    a_col = lay.alloc("col_idx", len(col))
    a_wts = lay.alloc("weights", len(col))
    a_dist = lay.alloc("dist", n_vertices)

    tb = TraceBuilder("sssp", config.gpu.num_sms, config.gpu.warp_size)
    dist = np.full(n_vertices, 1 << 30, dtype=np.int64)
    # Multi-source (benchmark-harness style): relaxations happen from the
    # first round on, not only around a single slowly-growing frontier.
    sources = rng.integers(0, n_vertices, size=max(64, n_vertices // 256))
    dist[sources] = 0
    warps_emitted = 0
    for _ in range(rounds):
        # Warps own 32 *consecutive* vertices (coalesced row_ptr/dist reads,
        # as in the real kernel); the block order is shuffled.
        blocks = rng.permutation(n_vertices // 32)
        for blk in blocks:
            if warps_emitted >= max_warps:
                return tb.build()
            vs = np.arange(blk * 32, blk * 32 + 32)
            wb = tb.new_warp()
            warps_emitted += 1
            wb.compute(4).load_gather(a_rowptr, vs.tolist())
            wb.compute(1).load_gather(a_dist, vs.tolist())
            deg = (row_ptr[vs + 1] - row_ptr[vs]).astype(np.int64)
            steps = _edge_steps(deg, max_edge_steps)
            for k in range(steps):
                active = deg > k
                if not active.any():
                    break
                eidx = np.minimum(row_ptr[vs] + k, len(col) - 1)
                wb.compute(2).load_gather(
                    a_col, [int(e) if a else None for e, a in zip(eidx, active)]
                )
                wb.load_gather(
                    a_wts, [int(e) if a else None for e, a in zip(eidx, active)]
                )
                nbr = col[eidx]
                wb.compute(1).load_gather(
                    a_dist, [int(x) if a else None for x, a in zip(nbr, active)]
                )
                relaxed = []
                for v, x, e, a in zip(vs, nbr, eidx, active):
                    if a and dist[v] + weights[e] < dist[x]:
                        dist[x] = dist[v] + weights[e]
                        relaxed.append(int(x))
                    else:
                        relaxed.append(None)
                if any(r is not None for r in relaxed):
                    wb.store_gather(a_dist, relaxed)
            wb.compute(6)
    return tb.build()


def bh_trace(
    config: SimConfig,
    n_bodies: int = 100_000,
    seed: int = 17,
    fanout: int = 8,
    max_warps: int = 1200,
) -> KernelTrace:
    """Barnes-Hut force pass (LonestarGPU bh): per-body tree descents.

    All lanes start at the root (perfectly coalesced, cache-friendly) and
    diverge as the walk deepens — the canonical irregular tree workload.
    """
    rng = np.random.default_rng(seed)
    # Implicit complete tree in an array; leaves own the bodies.
    depth = 1
    while fanout**depth < n_bodies:
        depth += 1
    n_nodes = sum(fanout**d for d in range(depth + 1))
    lay = Layout()
    a_nodes = lay.alloc("nodes", n_nodes * 4)  # (mass, cx, cy, cz) per node
    a_bodies = lay.alloc("bodies", n_bodies * 4)
    a_accel = lay.alloc("accel", n_bodies * 4)

    level_base = np.zeros(depth + 1, dtype=np.int64)
    for d in range(1, depth + 1):
        level_base[d] = level_base[d - 1] + fanout ** (d - 1)

    tb = TraceBuilder("bh", config.gpu.num_sms, config.gpu.warp_size)
    warps_emitted = 0
    # Bodies are spatially sorted (the real BH implementation sorts them),
    # so a warp's 32 bodies take *similar* tree paths: walks coalesce near
    # the root and fan out with depth.
    for base in range(0, n_bodies, 32):
        if warps_emitted >= max_warps:
            break
        ids = np.arange(base, min(base + 32, n_bodies))
        wb = tb.new_warp()
        warps_emitted += 1
        wb.compute(4).load_gather(a_bodies, (ids * 4).tolist())
        node = np.zeros(len(ids), dtype=np.int64)  # all at root
        for d in range(depth):
            wb.compute(6).load_gather(
                a_nodes, (node * 4 + level_base[d] * 4).tolist()
            )
            # Spatially similar bodies mostly pick the same child; a
            # quarter of the lanes deviate, so paths diverge gradually.
            majority = int(rng.integers(0, fanout))
            child = np.where(
                rng.random(len(ids)) < 0.75,
                majority,
                rng.integers(0, fanout, size=len(ids)),
            )
            node = node * fanout + child
        wb.compute(12)
        wb.store_gather(a_accel, (ids * 4).tolist())
    return tb.build()


def sp_trace(
    config: SimConfig,
    n_vars: int = 80_000,
    n_clauses: int = 200_000,
    seed: int = 19,
    rounds: int = 1,
    max_warps: int = 1300,
    community: int = 256,
) -> KernelTrace:
    """Survey propagation (LonestarGPU sp): message passing on a random
    3-SAT factor graph with community structure.  Per clause: gather the
    three variable states (spread over several channels), compute, scatter
    a message per literal."""
    rng = np.random.default_rng(seed)
    # Community structure: a clause's variables come from a window around
    # its home community (communities run along the clause index, so one
    # warp's 32 consecutive clauses gather from one window), with
    # occasional long-range literals.
    home = np.arange(n_clauses, dtype=np.int64) * n_vars // n_clauses
    offs = rng.integers(0, community, size=(n_clauses, 3))
    lits = (home[:, None] + offs) % n_vars
    remote = rng.random((n_clauses, 3)) < 0.15
    lits = np.where(remote, rng.integers(0, n_vars, size=(n_clauses, 3)), lits)
    lay = Layout()
    a_lits = lay.alloc("literals", n_clauses * 3)
    a_var = lay.alloc("var_state", n_vars)
    a_msg = lay.alloc("messages", n_clauses * 3)

    tb = TraceBuilder("sp", config.gpu.num_sms, config.gpu.warp_size)
    warps_emitted = 0
    for _ in range(rounds):
        blocks = rng.permutation(n_clauses // 32)
        for blk in blocks:
            if warps_emitted >= max_warps:
                return tb.build()
            cs = np.arange(blk * 32, blk * 32 + 32)
            wb = tb.new_warp()
            warps_emitted += 1
            wb.compute(4).load_gather(a_lits, (cs * 3).tolist())
            for j in range(3):
                vars_j = lits[cs, j]
                wb.compute(3).load_gather(a_var, vars_j.tolist())
            wb.compute(10)
            wb.store_gather(a_msg, (cs * 3 + rng.integers(0, 3)).tolist())
            # occasional variable-state update (biased decimation)
            if rng.random() < 0.4:
                wb.store_gather(a_var, lits[cs, 0].tolist())
    return tb.build()
