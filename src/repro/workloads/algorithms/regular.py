"""Regular (non-divergent) workloads for the §VI-A experiment.

These model streaming/stencil kernels whose accesses coalesce into one
request per load in the common case: streamcluster, srad2, bp, hotspot
(Rodinia) and InvertedIndex, PageViewRank (MARS).  The §VI-A claim to
verify: the warp-aware schedulers must not slow these down (the paper
measures +1.8% with no regressions).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SimConfig
from repro.workloads.builder import Layout, TraceBuilder
from repro.workloads.trace import KernelTrace

__all__ = ["stream_trace", "stencil_trace", "index_scan_trace"]


def stream_trace(
    config: SimConfig,
    name: str = "streamcluster",
    n_elems: int = 1 << 20,
    write_every: int = 8,
    compute: int = 20,
    seed: int = 53,
    max_warps: int = 1200,
    loads_per_warp: int = 14,
) -> KernelTrace:
    """Pure streaming kernel: unit-stride loads, periodic streaming stores."""
    lay = Layout()
    a_in = lay.alloc("input", n_elems)
    a_out = lay.alloc("output", n_elems)
    tb = TraceBuilder(name, config.gpu.num_sms, config.gpu.warp_size)
    cursor = 0
    for _ in range(max_warps):
        wb = tb.new_warp()
        for i in range(loads_per_warp):
            wb.compute(compute).load_stream(a_in, cursor % (n_elems - 32))
            if i % write_every == write_every - 1:
                wb.store_stream(a_out, cursor % (n_elems - 32))
            cursor += 32
        wb.compute(compute)
    return tb.build()


def stencil_trace(
    config: SimConfig,
    name: str = "hotspot",
    width: int = 2048,
    height: int = 512,
    compute: int = 26,
    write_ratio: float = 0.5,
    seed: int = 59,
    max_warps: int = 1200,
) -> KernelTrace:
    """5-point 2D stencil: three row-streams per output row (row locality)."""
    rng = np.random.default_rng(seed)
    lay = Layout()
    a_grid = lay.alloc("grid_in", width * height)
    a_out = lay.alloc("grid_out", width * height)
    tb = TraceBuilder(name, config.gpu.num_sms, config.gpu.warp_size)
    warps_emitted = 0
    for y in range(1, height - 1):
        for x0 in range(0, width, 32):
            if warps_emitted >= max_warps:
                return tb.build()
            wb = tb.new_warp()
            warps_emitted += 1
            center = y * width + x0
            wb.compute(compute // 2).load_stream(a_grid, center - width)
            wb.compute(2).load_stream(a_grid, center)
            wb.compute(2).load_stream(a_grid, center + width)
            wb.compute(compute)
            if rng.random() < write_ratio:
                wb.store_stream(a_out, center)
    return tb.build()


def index_scan_trace(
    config: SimConfig,
    name: str = "InvertedIndex",
    n_elems: int = 1 << 20,
    jump_every: int = 6,
    compute: int = 16,
    write_ratio: float = 0.25,
    seed: int = 61,
    max_warps: int = 1200,
    loads_per_warp: int = 12,
) -> KernelTrace:
    """Streaming scan with occasional indexed jumps (MARS text kernels):
    mostly coalesced, a small fraction of loads split into 2-3 requests."""
    rng = np.random.default_rng(seed)
    lay = Layout()
    a_text = lay.alloc("text", n_elems)
    a_index = lay.alloc("index", n_elems // 4)
    a_out = lay.alloc("output", n_elems // 4)
    tb = TraceBuilder(name, config.gpu.num_sms, config.gpu.warp_size)
    cursor = 0
    for _ in range(max_warps):
        wb = tb.new_warp()
        for i in range(loads_per_warp):
            if i % jump_every == jump_every - 1:
                # keyword hit: probe the index at 2-3 scattered offsets
                base = int(rng.integers(0, n_elems // 4 - 64))
                idx = [base + int(rng.integers(0, 96)) for _ in range(32)]
                wb.compute(compute).load_gather(a_index, idx)
            else:
                wb.compute(compute).load_stream(a_text, cursor % (n_elems - 32))
            if rng.random() < write_ratio:
                wb.store_stream(a_out, cursor % (n_elems // 4 - 32))
            cursor += 32
        wb.compute(compute)
    return tb.build()
