"""MARS MapReduce workloads: PVC (PageViewCount) and SS (SimilarityScore).

PVC maps web-log records to hash-table buckets: streaming record reads
followed by hash-random bucket probes and chained-entry walks, with
scattered counter updates — high divergence *and* high write traffic.

SS computes pairwise document similarity: gathers of two feature vectors
at data-dependent document ids, then scattered score writes; the paper's
write-drain mechanism (WG-W) profits from exactly this store pattern.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SimConfig
from repro.workloads.builder import Layout, TraceBuilder
from repro.workloads.trace import KernelTrace

__all__ = ["pvc_trace", "ss_trace"]


def pvc_trace(
    config: SimConfig,
    n_records: int = 200_000,
    n_buckets: int = 1 << 16,
    seed: int = 37,
    chain_steps: int = 1,
    max_warps: int = 1300,
) -> KernelTrace:
    """MARS PageViewCount: hash-table accumulation over log records."""
    rng = np.random.default_rng(seed)
    lay = Layout()
    a_records = lay.alloc("records", n_records * 4)  # 16B log entries
    a_buckets = lay.alloc("buckets", n_buckets)
    a_entries = lay.alloc("entries", n_buckets * 2)
    a_counts = lay.alloc("counts", n_buckets)

    # Zipf-ish URL popularity: a few hot buckets, a long tail.
    urls = rng.zipf(1.5, size=n_records) % n_buckets

    tb = TraceBuilder("PVC", config.gpu.num_sms, config.gpu.warp_size)
    warps_emitted = 0
    for base in range(0, n_records, 32):
        if warps_emitted >= max_warps:
            break
        recs = np.arange(base, min(base + 32, n_records))
        wb = tb.new_warp()
        warps_emitted += 1
        # map phase: streaming record parse (coalesced, 4 lines)
        wb.compute(6).load_gather(a_records, (recs * 4).tolist())
        b = urls[recs]
        # bucket head probe: hash-random gather
        wb.compute(4).load_gather(a_buckets, b.tolist())
        cur = b.copy()
        for _ in range(chain_steps):
            cur = (cur * 2654435761 + 12345) % n_buckets
            wb.compute(2).load_gather(a_entries, (cur * 2).tolist())
        # reduce: scattered counter updates
        wb.compute(3).store_gather(a_counts, b.tolist())
        wb.store_gather(a_entries, (cur * 2 + 1).tolist())
    return tb.build()


def ss_trace(
    config: SimConfig,
    n_docs: int = 60_000,
    vec_len: int = 16,
    n_pairs: int = 200_000,
    seed: int = 41,
    max_warps: int = 1200,
    window: int = 256,
) -> KernelTrace:
    """MARS SimilarityScore: pairwise doc-vector dot products.

    Vectors are stored feature-major (MARS's column layout), so a warp's
    gathers for one feature land within a doc-id window — divergent but
    clustered, matching the measured ~5 requests per load.
    """
    rng = np.random.default_rng(seed)
    lay = Layout()
    a_vecs = lay.alloc("doc_vectors", n_docs * vec_len)
    a_pairs = lay.alloc("pairs", n_pairs * 2)
    a_scores = lay.alloc("scores", n_pairs)

    # Pair lists come from bucketed candidate generation: a *block* of
    # consecutive pairs shares a home document, so one warp's gathers
    # cluster in a doc-id window (divergent but not uniformly random).
    n_blocks = (n_pairs + 31) // 32
    block_home = rng.integers(0, n_docs, size=n_blocks)
    base_doc = np.repeat(block_home, 32)[:n_pairs]
    pa = (base_doc + rng.integers(0, window, size=n_pairs)) % n_docs
    pb = (base_doc + rng.integers(0, window, size=n_pairs)) % n_docs

    tb = TraceBuilder("SS", config.gpu.num_sms, config.gpu.warp_size)
    warps_emitted = 0
    for base in range(0, n_pairs, 32):
        if warps_emitted >= max_warps:
            break
        ps = np.arange(base, min(base + 32, n_pairs))
        wb = tb.new_warp()
        warps_emitted += 1
        wb.compute(4).load_stream(a_pairs, base * 2)  # coalesced pair list
        # feature-major vector gathers: vecs[f * n_docs + doc]
        da, db = pa[ps], pb[ps]
        for f in range(0, vec_len, vec_len // 2):
            wb.compute(3).load_gather(a_vecs, (f * n_docs + da).tolist())
            wb.compute(3).load_gather(a_vecs, (f * n_docs + db).tolist())
        wb.compute(12)
        # score writes: pair order is arrival order, but pairs reference
        # scattered score-matrix cells in the real kernel — model as a
        # hashed scatter to spread rows.
        scat = (ps * 7919) % n_pairs
        wb.store_gather(a_scores, scat.tolist())
        # partial-result spill (MARS emits intermediate key/values)
        wb.store_gather(a_scores, ((scat + 1) % n_pairs).tolist())
    return tb.build()
