"""Algorithmic workload generators (run the real algorithm, emit its trace)."""

from repro.workloads.algorithms.graphs import (
    bfs_trace,
    bh_trace,
    random_csr,
    sp_trace,
    sssp_trace,
)
from repro.workloads.algorithms.mapreduce import pvc_trace, ss_trace
from repro.workloads.algorithms.media import nw_trace, sad_trace
from repro.workloads.algorithms.modern import (
    embedding_gather_trace,
    graph_sample_trace,
)
from repro.workloads.algorithms.regular import (
    index_scan_trace,
    stencil_trace,
    stream_trace,
)
from repro.workloads.algorithms.sparse import cfd_trace, kmeans_trace, spmv_trace

__all__ = [
    "bfs_trace",
    "bh_trace",
    "cfd_trace",
    "embedding_gather_trace",
    "graph_sample_trace",
    "index_scan_trace",
    "kmeans_trace",
    "nw_trace",
    "pvc_trace",
    "random_csr",
    "sad_trace",
    "sp_trace",
    "spmv_trace",
    "ss_trace",
    "sssp_trace",
    "stencil_trace",
    "stream_trace",
]
