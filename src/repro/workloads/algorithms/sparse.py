"""Sparse/unstructured compute: spmv (Parboil), cfd (Rodinia), kmeans (Rodinia).

``spmv`` uses the scalar-row CSR kernel (one thread per row): row pointers
are coalesced, but each thread walks its own nonzero run and gathers
``x[col]`` — the classic divergence pattern the paper's Fig. 2 measures.

``cfd`` models the Rodinia Euler solver: per-cell gathers of the four
neighboring cells' flow variables through an unstructured connectivity
array, spreading each warp across many channels (§VI reports cfd touching
~3.2 controllers per warp).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SimConfig
from repro.workloads.builder import Layout, TraceBuilder
from repro.workloads.trace import KernelTrace

__all__ = ["spmv_trace", "cfd_trace", "kmeans_trace"]


def spmv_trace(
    config: SimConfig,
    n_rows: int = 150_000,
    avg_nnz: float = 8.0,
    seed: int = 23,
    max_nnz_steps: int = 8,
    max_warps: int = 1300,
) -> KernelTrace:
    """CSR SpMV, scalar-row kernel (Parboil spmv)."""
    rng = np.random.default_rng(seed)
    nnz_per_row = np.clip(
        rng.lognormal(np.log(avg_nnz), 0.5, size=n_rows), 1, 6 * avg_nnz
    ).astype(np.int64)
    row_ptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(nnz_per_row, out=row_ptr[1:])
    nnz = int(row_ptr[-1])
    # Banded-random sparsity: mostly near the diagonal, some far entries.
    src = np.repeat(np.arange(n_rows), nnz_per_row)
    near = (src + rng.integers(-64, 65, size=nnz)) % n_rows
    far = rng.integers(0, n_rows, size=nnz)
    cols = np.where(rng.random(nnz) < 0.7, near, far)

    lay = Layout()
    a_rowptr = lay.alloc("row_ptr", n_rows + 1)
    a_vals = lay.alloc("vals", nnz)
    a_cols = lay.alloc("cols", nnz)
    a_x = lay.alloc("x", n_rows)
    a_y = lay.alloc("y", n_rows)

    tb = TraceBuilder("spmv", config.gpu.num_sms, config.gpu.warp_size)
    warps_emitted = 0
    for base in range(0, n_rows, 32):
        if warps_emitted >= max_warps:
            break
        rows = np.arange(base, min(base + 32, n_rows))
        wb = tb.new_warp()
        warps_emitted += 1
        wb.compute(4).load_stream(a_rowptr, base)  # coalesced row_ptr
        deg = nnz_per_row[rows]
        steps = int(min(max_nnz_steps, deg.max(initial=0)))
        for k in range(steps):
            active = deg > k
            if not active.any():
                break
            eidx = np.minimum(row_ptr[rows] + k, nnz - 1)
            # vals/cols: each lane at its own cursor -> divergent gather
            wb.compute(1).load_gather(
                a_vals, [int(e) if a else None for e, a in zip(eidx, active)]
            )
            wb.load_gather(
                a_cols, [int(e) if a else None for e, a in zip(eidx, active)]
            )
            xs = cols[eidx]
            # x[col]: the irregular gather
            wb.compute(2).load_gather(
                a_x, [int(x) if a else None for x, a in zip(xs, active)]
            )
        wb.compute(6)
        wb.store_stream(a_y, base)
    return tb.build()


def cfd_trace(
    config: SimConfig,
    n_cells: int = 120_000,
    seed: int = 29,
    iterations: int = 2,
    n_vars: int = 5,
    max_warps: int = 1300,
) -> KernelTrace:
    """Rodinia CFD Euler solver: per-cell neighbor-variable gathers."""
    rng = np.random.default_rng(seed)
    cells_all = np.arange(n_cells)
    # Unstructured tetrahedral connectivity: two close face-neighbors, one
    # a mesh-stride away, one remote (renumbering artifacts) — the mix that
    # spreads cfd warps over ~3 controllers.
    jitter = rng.integers(-8, 9, size=n_cells)
    nbrs = np.stack(
        [
            (cells_all + 1) % n_cells,
            (cells_all - 1 + jitter) % n_cells,
            (cells_all + 347 + jitter) % n_cells,
            rng.integers(0, n_cells, size=n_cells),
        ],
        axis=1,
    )  # (n_cells, 4)
    lay = Layout()
    a_nbr = lay.alloc("neighbors", n_cells * 4)
    a_vars = lay.alloc("variables", n_cells * n_vars)
    a_flux = lay.alloc("fluxes", n_cells * n_vars)
    a_area = lay.alloc("areas", n_cells)

    tb = TraceBuilder("cfd", config.gpu.num_sms, config.gpu.warp_size)
    warps_emitted = 0
    for _ in range(iterations):
        for base in range(0, n_cells, 32):
            if warps_emitted >= max_warps:
                return tb.build()
            cells = np.arange(base, min(base + 32, n_cells))
            wb = tb.new_warp()
            warps_emitted += 1
            wb.compute(6).load_stream(a_area, base)
            wb.load_gather(a_vars, (cells * n_vars).tolist())
            wb.compute(2).load_gather(a_nbr, (cells * 4).tolist())
            for j in range(4):
                nb = nbrs[cells, j]
                # neighbor variables: the irregular cross-channel gather
                wb.compute(8).load_gather(a_vars, (nb * n_vars).tolist())
            wb.compute(20)
            wb.store_gather(a_flux, (cells * n_vars).tolist())
    return tb.build()


def kmeans_trace(
    config: SimConfig,
    n_points: int = 150_000,
    n_features: int = 6,
    n_clusters: int = 24,
    seed: int = 31,
    iterations: int = 1,
    max_warps: int = 1300,
) -> KernelTrace:
    """Rodinia kmeans: point-major feature walks + centroid gathers.

    The Rodinia kernel keeps features point-major, so each thread strides
    by ``n_features`` — consecutive lanes touch different cache lines,
    producing several requests per load (MAI without any indirection).
    """
    rng = np.random.default_rng(seed)
    lay = Layout()
    a_feat = lay.alloc("features", n_points * n_features)
    a_cent = lay.alloc("centroids", n_clusters * n_features)
    a_member = lay.alloc("membership", n_points)

    tb = TraceBuilder("kmeans", config.gpu.num_sms, config.gpu.warp_size)
    assign = rng.integers(0, n_clusters, size=n_points)
    warps_emitted = 0
    for _ in range(iterations):
        for base in range(0, n_points, 32):
            if warps_emitted >= max_warps:
                return tb.build()
            pts = np.arange(base, min(base + 32, n_points))
            wb = tb.new_warp()
            warps_emitted += 1
            for f in range(n_features):
                # point-major stride: lanes 8 lines apart per feature step
                wb.compute(2).load_gather(a_feat, (pts * n_features + f).tolist())
                # current centroid's feature f: data-dependent, cache-warm
                wb.load_gather(a_cent, (assign[pts] * n_features + f).tolist())
            wb.compute(16)
            assign[pts] = rng.integers(0, n_clusters, size=len(pts))
            wb.store_stream(a_member, base)
    return tb.build()
