"""Kernel trace containers.

The SM model is trace-driven: each warp executes a list of *segments*, a
segment being a run of compute instructions optionally terminated by one
vector memory instruction (32 lane addresses, some possibly masked off).
This is exactly the information the paper's mechanisms consume — request
addresses, their warp of origin, and the compute spacing that determines
how much latency the SM's multithreading can hide.

Traces can be persisted two ways:

* ``.npz`` archives (:meth:`KernelTrace.save` / :meth:`KernelTrace.load`)
  — compact numpy arrays, the internal cache format;
* JSON documents (:meth:`KernelTrace.save_json` /
  :meth:`KernelTrace.load_json`) — the *ingestion* format: any external
  tracer that can emit per-warp segment lists can produce one and replay
  it through the simulator (``kind: trace`` in a scenario spec, see
  docs/scenarios.md).  The two round-trip losslessly through
  :meth:`KernelTrace.to_json_dict` / :meth:`KernelTrace.from_json_dict`.

:func:`load_trace_file` dispatches on extension (``.json`` vs npz).
"""

from __future__ import annotations

import json
import zipfile
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

import numpy as np

__all__ = [
    "MemOp",
    "Segment",
    "WarpTrace",
    "KernelTrace",
    "TraceFormatError",
    "TRACE_JSON_FORMAT",
    "TRACE_JSON_VERSION",
    "load_trace_file",
]

#: Self-identification of the JSON trace interchange format.
TRACE_JSON_FORMAT = "repro-kernel-trace"
TRACE_JSON_VERSION = 1


class TraceFormatError(ValueError):
    """A persisted trace archive is corrupt or structurally inconsistent.

    Raised by :meth:`KernelTrace.load` instead of the raw numpy/zipfile
    exceptions so callers can tell "bad trace file" from a programming
    error.  The message always names the file and, where applicable, the
    offending array.
    """


@dataclass(slots=True)
class MemOp:
    """One vector memory instruction."""

    is_write: bool
    lane_addrs: list[Optional[int]]

    def active_lanes(self) -> int:
        return sum(1 for a in self.lane_addrs if a is not None)


@dataclass(slots=True)
class Segment:
    """``compute_cycles`` ALU instructions, then (optionally) one memory op."""

    compute_cycles: int = 0
    mem: Optional[MemOp] = None

    @property
    def instructions(self) -> int:
        return self.compute_cycles + (1 if self.mem is not None else 0)


@dataclass(slots=True)
class WarpTrace:
    """The full instruction trace of one warp."""

    sm_id: int
    warp_id: int
    segments: list[Segment] = field(default_factory=list)

    def loads(self) -> Iterator[MemOp]:
        return (s.mem for s in self.segments if s.mem is not None and not s.mem.is_write)

    def instructions(self) -> int:
        return sum(s.instructions for s in self.segments)

    def memory_ops(self) -> int:
        return sum(1 for s in self.segments if s.mem is not None)


@dataclass
class KernelTrace:
    """A kernel: warps pre-assigned to SMs."""

    name: str
    warps: list[WarpTrace] = field(default_factory=list)

    def by_sm(self, num_sms: int) -> list[list[WarpTrace]]:
        buckets: list[list[WarpTrace]] = [[] for _ in range(num_sms)]
        for w in self.warps:
            if not 0 <= w.sm_id < num_sms:
                raise ValueError(
                    f"warp {w.warp_id} assigned to SM {w.sm_id} of {num_sms}"
                )
            buckets[w.sm_id].append(w)
        return buckets

    def total_instructions(self) -> int:
        return sum(w.instructions() for w in self.warps)

    def total_memory_ops(self) -> int:
        return sum(w.memory_ops() for w in self.warps)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Serialize to a compressed npz archive."""
        warp_meta = []  # (sm_id, warp_id, n_segments)
        seg_meta = []  # (compute_cycles, has_mem, is_write, n_lanes)
        lanes = []  # flattened lane addresses, -1 for masked lanes
        for w in self.warps:
            warp_meta.append((w.sm_id, w.warp_id, len(w.segments)))
            for s in w.segments:
                if s.mem is None:
                    seg_meta.append((s.compute_cycles, 0, 0, 0))
                else:
                    seg_meta.append(
                        (s.compute_cycles, 1, int(s.mem.is_write), len(s.mem.lane_addrs))
                    )
                    lanes.extend(
                        -1 if a is None else a for a in s.mem.lane_addrs
                    )
        np.savez_compressed(
            path,
            name=np.array(self.name),
            warp_meta=np.asarray(warp_meta, dtype=np.int64).reshape(-1, 3),
            seg_meta=np.asarray(seg_meta, dtype=np.int64).reshape(-1, 4),
            lanes=np.asarray(lanes, dtype=np.int64),
        )

    @classmethod
    def load(cls, path: str) -> "KernelTrace":
        try:
            data = np.load(path, allow_pickle=False)
        except (OSError, ValueError, zipfile.BadZipFile) as exc:
            raise TraceFormatError(
                f"{path}: not a readable npz trace archive ({exc})"
            ) from exc
        with data:
            arrays = {}
            for key in ("name", "warp_meta", "seg_meta", "lanes"):
                try:
                    arrays[key] = data[key]
                except (KeyError, zipfile.BadZipFile, ValueError, OSError) as exc:
                    raise TraceFormatError(
                        f"{path}: array '{key}' missing or unreadable ({exc})"
                    ) from exc
        name = str(arrays["name"])
        warp_meta = arrays["warp_meta"]
        seg_meta = arrays["seg_meta"]
        lanes = arrays["lanes"]
        for key in ("warp_meta", "seg_meta", "lanes"):
            if not np.issubdtype(arrays[key].dtype, np.integer):
                raise TraceFormatError(
                    f"{path}: array '{key}' has non-integer dtype "
                    f"{arrays[key].dtype}"
                )
        if warp_meta.ndim != 2 or warp_meta.shape[1] != 3:
            raise TraceFormatError(
                f"{path}: array 'warp_meta' has shape {warp_meta.shape}, "
                "expected (n_warps, 3)"
            )
        if seg_meta.ndim != 2 or seg_meta.shape[1] != 4:
            raise TraceFormatError(
                f"{path}: array 'seg_meta' has shape {seg_meta.shape}, "
                "expected (n_segments, 4)"
            )
        if lanes.ndim != 1:
            raise TraceFormatError(
                f"{path}: array 'lanes' has shape {lanes.shape}, expected 1-D"
            )
        claimed_segs = int(warp_meta[:, 2].sum()) if len(warp_meta) else 0
        if claimed_segs != len(seg_meta):
            raise TraceFormatError(
                f"{path}: array 'seg_meta' holds {len(seg_meta)} segments but "
                f"'warp_meta' claims {claimed_segs}"
            )
        claimed_lanes = int((seg_meta[:, 1] * seg_meta[:, 3]).sum()) if len(seg_meta) else 0
        if claimed_lanes != len(lanes):
            raise TraceFormatError(
                f"{path}: array 'lanes' holds {len(lanes)} addresses but "
                f"'seg_meta' claims {claimed_lanes}"
            )
        warps: list[WarpTrace] = []
        si = 0
        li = 0
        for sm_id, warp_id, n_segs in warp_meta:
            segments: list[Segment] = []
            for _ in range(n_segs):
                compute, has_mem, is_write, n_lanes = seg_meta[si]
                si += 1
                mem = None
                if has_mem:
                    raw = lanes[li : li + n_lanes]
                    li += n_lanes
                    mem = MemOp(
                        is_write=bool(is_write),
                        lane_addrs=[None if a < 0 else int(a) for a in raw],
                    )
                segments.append(Segment(compute_cycles=int(compute), mem=mem))
            warps.append(WarpTrace(int(sm_id), int(warp_id), segments))
        return cls(name=name, warps=warps)

    # ------------------------------------------------------------------
    # JSON interchange (external trace ingestion)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict:
        """Plain-JSON form: each segment is ``[compute]`` (no memory op) or
        ``[compute, is_write, [lane addresses, null = masked]]``."""
        warps = []
        for w in self.warps:
            segments: list[list] = []
            for s in w.segments:
                if s.mem is None:
                    segments.append([s.compute_cycles])
                else:
                    segments.append(
                        [s.compute_cycles, int(s.mem.is_write), s.mem.lane_addrs]
                    )
            warps.append(
                {"sm": w.sm_id, "warp": w.warp_id, "segments": segments}
            )
        return {
            "format": TRACE_JSON_FORMAT,
            "version": TRACE_JSON_VERSION,
            "name": self.name,
            "warps": warps,
        }

    def save_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json_dict(), fh, indent=1)
            fh.write("\n")

    @classmethod
    def from_json_dict(cls, doc, source: str = "<json>") -> "KernelTrace":
        """Validating inverse of :meth:`to_json_dict`; raises
        :class:`TraceFormatError` naming ``source`` and the bad element."""

        def bad(detail: str) -> TraceFormatError:
            return TraceFormatError(f"{source}: {detail}")

        if not isinstance(doc, dict):
            raise bad("top level must be a JSON object")
        if doc.get("format") != TRACE_JSON_FORMAT:
            raise bad(
                f"'format' is {doc.get('format')!r}, "
                f"expected {TRACE_JSON_FORMAT!r}"
            )
        if doc.get("version") != TRACE_JSON_VERSION:
            raise bad(
                f"unsupported trace version {doc.get('version')!r} "
                f"(this build reads version {TRACE_JSON_VERSION})"
            )
        name = doc.get("name")
        if not isinstance(name, str) or not name:
            raise bad("'name' must be a non-empty string")
        raw_warps = doc.get("warps")
        if not isinstance(raw_warps, list) or not raw_warps:
            raise bad("'warps' must be a non-empty list")
        warps: list[WarpTrace] = []
        for wi, rw in enumerate(raw_warps):
            if not isinstance(rw, dict):
                raise bad(f"warps[{wi}] must be an object")
            sm_id, warp_id = rw.get("sm"), rw.get("warp")
            for label, v in (("sm", sm_id), ("warp", warp_id)):
                if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                    raise bad(
                        f"warps[{wi}].{label} must be a non-negative "
                        f"integer, got {v!r}"
                    )
            raw_segs = rw.get("segments")
            if not isinstance(raw_segs, list):
                raise bad(f"warps[{wi}].segments must be a list")
            segments: list[Segment] = []
            for si, rs in enumerate(raw_segs):
                where = f"warps[{wi}].segments[{si}]"
                if not isinstance(rs, list) or len(rs) not in (1, 3):
                    raise bad(
                        f"{where} must be [compute] or "
                        "[compute, is_write, lanes]"
                    )
                compute = rs[0]
                if not isinstance(compute, int) or isinstance(compute, bool) or compute < 0:
                    raise bad(
                        f"{where}: compute cycles must be a non-negative "
                        f"integer, got {compute!r}"
                    )
                mem = None
                if len(rs) == 3:
                    is_write, lanes = rs[1], rs[2]
                    if is_write not in (0, 1, True, False):
                        raise bad(
                            f"{where}: is_write must be 0/1, got {is_write!r}"
                        )
                    if not isinstance(lanes, list) or not lanes:
                        raise bad(f"{where}: lanes must be a non-empty list")
                    addrs: list[Optional[int]] = []
                    for li, a in enumerate(lanes):
                        if a is None:
                            addrs.append(None)
                        elif isinstance(a, int) and not isinstance(a, bool) and a >= 0:
                            addrs.append(a)
                        else:
                            raise bad(
                                f"{where}: lane {li} must be a non-negative "
                                f"integer address or null, got {a!r}"
                            )
                    if all(a is None for a in addrs):
                        raise bad(f"{where}: every lane is masked off")
                    mem = MemOp(is_write=bool(is_write), lane_addrs=addrs)
                segments.append(Segment(compute_cycles=compute, mem=mem))
            warps.append(WarpTrace(sm_id, warp_id, segments))
        return cls(name=name, warps=warps)

    @classmethod
    def load_json(cls, path: str) -> "KernelTrace":
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except OSError as exc:
            raise TraceFormatError(f"{path}: unreadable ({exc})") from exc
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"{path}: not valid JSON ({exc})") from exc
        return cls.from_json_dict(doc, source=path)


def load_trace_file(path: str) -> KernelTrace:
    """Load a persisted trace, dispatching on extension: ``.json`` uses
    the interchange reader, everything else the npz reader."""
    if path.endswith(".json"):
        return KernelTrace.load_json(path)
    return KernelTrace.load(path)
