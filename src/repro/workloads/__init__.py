"""Workload generation: trace containers, synthetic profiles, algorithmic kernels."""

from repro.workloads.mutate import mutate_trace
from repro.workloads.trace import (
    KernelTrace,
    MemOp,
    Segment,
    TraceFormatError,
    WarpTrace,
)

__all__ = [
    "KernelTrace",
    "MemOp",
    "Segment",
    "TraceFormatError",
    "WarpTrace",
    "mutate_trace",
]
