"""Workload generation: trace containers, synthetic profiles, algorithmic kernels."""

from repro.workloads.trace import KernelTrace, MemOp, Segment, WarpTrace

__all__ = ["KernelTrace", "MemOp", "Segment", "WarpTrace"]
