"""Benchmark suite assembly (Table III + the §VI-A regular set).

``build_benchmark(name, config, scale)`` returns the kernel trace of any
benchmark the paper evaluates, built by the corresponding algorithmic
generator at the requested scale.  ``Scale`` trades fidelity for run time:

* ``TINY``  — unit/bench tests (seconds per simulation);
* ``QUICK`` — default experiment scale (tens of seconds per simulation);
* ``PAPER`` — full-size runs for the committed EXPERIMENTS.md numbers.

Traces are deterministic in (name, scale, seed) and can be cached to
``.npz`` via ``cache_dir``.
"""

from __future__ import annotations

import os
from enum import Enum
from typing import Callable

from repro.core.config import SimConfig
from repro.workloads.algorithms import (
    bfs_trace,
    bh_trace,
    cfd_trace,
    embedding_gather_trace,
    graph_sample_trace,
    index_scan_trace,
    kmeans_trace,
    nw_trace,
    pvc_trace,
    sad_trace,
    sp_trace,
    spmv_trace,
    ss_trace,
    sssp_trace,
    stencil_trace,
    stream_trace,
)
from repro.workloads.trace import KernelTrace

__all__ = [
    "Scale",
    "IRREGULAR_SUITE",
    "REGULAR_SUITE",
    "MODERN_SUITE",
    "build_benchmark",
    "benchmark_names",
]


class Scale(Enum):
    TINY = 0.10
    QUICK = 0.30
    SMALL = 0.50
    PAPER = 1.0

    @property
    def factor(self) -> float:
        return self.value


def _s(x: float, f: float, lo: int = 32) -> int:
    return max(lo, int(x * f))


Builder = Callable[[SimConfig, float, int], KernelTrace]

# Problem sizes stay large at every scale (small footprints would fit in
# the caches and erase the irregularity the paper studies); the *warp
# budget* scales with the factor.
IRREGULAR_SUITE: dict[str, Builder] = {
    "bfs": lambda c, f, s: bfs_trace(
        c, n_vertices=150_000, seed=s, max_frontier_warps=_s(1200, f)
    ),
    "cfd": lambda c, f, s: cfd_trace(
        c, n_cells=120_000, seed=s, max_warps=_s(1300, f)
    ),
    "nw": lambda c, f, s: nw_trace(c, n=2048, seed=s, max_warps=_s(1400, f)),
    "kmeans": lambda c, f, s: kmeans_trace(
        c, n_points=150_000, seed=s, max_warps=_s(1300, f)
    ),
    "PVC": lambda c, f, s: pvc_trace(
        c, n_records=200_000, seed=s, max_warps=_s(1300, f)
    ),
    "SS": lambda c, f, s: ss_trace(
        c, n_pairs=200_000, n_docs=60_000, seed=s, max_warps=_s(1200, f)
    ),
    "sp": lambda c, f, s: sp_trace(
        c, n_vars=80_000, n_clauses=200_000, seed=s, max_warps=_s(1300, f)
    ),
    "bh": lambda c, f, s: bh_trace(
        c, n_bodies=100_000, seed=s, max_warps=_s(1200, f)
    ),
    "sssp": lambda c, f, s: sssp_trace(
        c, n_vertices=120_000, seed=s, max_warps=_s(1400, f)
    ),
    "spmv": lambda c, f, s: spmv_trace(
        c, n_rows=150_000, seed=s, max_warps=_s(1300, f)
    ),
    "sad": lambda c, f, s: sad_trace(
        c, frame_w=704, frame_h=480, seed=s, max_warps=_s(1300, f)
    ),
}

REGULAR_SUITE: dict[str, Builder] = {
    "streamcluster": lambda c, f, s: stream_trace(
        c, "streamcluster", seed=s, max_warps=_s(1200, f), write_every=8
    ),
    "srad2": lambda c, f, s: stencil_trace(
        c, "srad2", seed=s, max_warps=_s(1200, f), write_ratio=0.6
    ),
    "bp": lambda c, f, s: stream_trace(
        c, "bp", seed=s, max_warps=_s(1200, f), write_every=4
    ),
    "hotspot": lambda c, f, s: stencil_trace(
        c, "hotspot", seed=s, max_warps=_s(1200, f), write_ratio=0.4
    ),
    "InvertedIndex": lambda c, f, s: index_scan_trace(
        c, "InvertedIndex", seed=s, max_warps=_s(1200, f), write_ratio=0.2
    ),
    "PageViewRank": lambda c, f, s: index_scan_trace(
        c, "PageViewRank", seed=s, max_warps=_s(1200, f), write_ratio=0.3
    ),
}

# Modern irregular workloads beyond the paper's Table III (algorithmic
# kind only — no synthetic profile): recommendation embedding-bag gather
# and GNN neighborhood sampling, for the scenario library's device ×
# workload sweeps (docs/scenarios.md).
MODERN_SUITE: dict[str, Builder] = {
    "embgather": lambda c, f, s: embedding_gather_trace(
        c, seed=s, max_warps=_s(1300, f)
    ),
    "graphsample": lambda c, f, s: graph_sample_trace(
        c, seed=s, max_warps=_s(1200, f)
    ),
}

_ALL = {**IRREGULAR_SUITE, **REGULAR_SUITE, **MODERN_SUITE}


def benchmark_names(irregular_only: bool = False) -> tuple[str, ...]:
    return tuple(IRREGULAR_SUITE if irregular_only else _ALL)


def build_benchmark(
    name: str,
    config: SimConfig,
    scale: Scale = Scale.QUICK,
    seed: int = 1,
    cache_dir: str | None = None,
) -> KernelTrace:
    """Build (or load from cache) the named benchmark's kernel trace."""
    try:
        builder = _ALL[name]
    except KeyError:
        raise ValueError(f"unknown benchmark {name!r}; choose from {sorted(_ALL)}") from None
    if cache_dir is not None:
        os.makedirs(cache_dir, exist_ok=True)
        path = os.path.join(cache_dir, f"{name}-{scale.name}-s{seed}.npz")
        if os.path.exists(path):
            return KernelTrace.load(path)
        trace = builder(config, scale.factor, seed)
        trace.save(path)
        return trace
    return builder(config, scale.factor, seed)
