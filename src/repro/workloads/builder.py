"""Trace-construction helpers shared by all workload generators.

``Layout`` is a bump allocator over the simulated physical address space
(GPU kernels see a flat allocation; we keep arrays 256B-aligned so the
interleaving of §II-C applies as on hardware).

``TraceBuilder``/``WarpBuilder`` accumulate per-warp segments with
convenience emitters:

* ``load_stream``  — 32 consecutive 4B elements: perfectly coalesced,
  exactly one 128B request;
* ``load_gather``  — arbitrary per-lane element indices: the coalescer
  will merge what it can (this is where MAI comes from);
* matching ``store_*`` variants.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.workloads.trace import KernelTrace, MemOp, Segment, WarpTrace

__all__ = ["Layout", "TraceBuilder", "WarpBuilder", "chunk_lanes", "ELEM_BYTES"]

ELEM_BYTES = 4  # all arrays hold 32-bit elements


class Layout:
    """Bump allocator for simulated device arrays."""

    def __init__(self, base: int = 0, alignment: int = 256, capacity: int = 768 << 20):
        self.cursor = base
        self.alignment = alignment
        self.capacity = capacity
        self.arrays: dict[str, tuple[int, int]] = {}

    def alloc(self, name: str, n_elems: int, elem_bytes: int = ELEM_BYTES) -> int:
        """Reserve an array; returns its base byte address."""
        size = n_elems * elem_bytes
        base = (self.cursor + self.alignment - 1) // self.alignment * self.alignment
        if base + size > self.capacity:
            raise MemoryError(
                f"layout overflow allocating {name}: {base + size} > {self.capacity}"
            )
        self.cursor = base + size
        self.arrays[name] = (base, size)
        return base


class WarpBuilder:
    """Accumulates the segment list of one warp."""

    def __init__(self, sm_id: int, warp_id: int, warp_size: int = 32) -> None:
        self.sm_id = sm_id
        self.warp_id = warp_id
        self.warp_size = warp_size
        self.segments: list[Segment] = []
        self._pending_compute = 0

    # -- compute ------------------------------------------------------------
    def compute(self, cycles: int) -> "WarpBuilder":
        self._pending_compute += max(0, int(cycles))
        return self

    def _emit(self, mem: Optional[MemOp]) -> None:
        self.segments.append(Segment(self._pending_compute, mem))
        self._pending_compute = 0

    # -- memory ops -----------------------------------------------------------
    def _lanes_from_elems(
        self, base: int, elem_idx: Sequence[Optional[int]], elem_bytes: int
    ) -> list[Optional[int]]:
        lanes: list[Optional[int]] = []
        for i in range(self.warp_size):
            if i < len(elem_idx) and elem_idx[i] is not None:
                lanes.append(base + int(elem_idx[i]) * elem_bytes)
            else:
                lanes.append(None)
        return lanes

    def load_gather(
        self,
        base: int,
        elem_idx: Sequence[Optional[int]],
        elem_bytes: int = ELEM_BYTES,
    ) -> "WarpBuilder":
        self._emit(MemOp(False, self._lanes_from_elems(base, elem_idx, elem_bytes)))
        return self

    def load_stream(
        self, base: int, first_elem: int, elem_bytes: int = ELEM_BYTES
    ) -> "WarpBuilder":
        idx = [first_elem + i for i in range(self.warp_size)]
        return self.load_gather(base, idx, elem_bytes)

    def store_gather(
        self,
        base: int,
        elem_idx: Sequence[Optional[int]],
        elem_bytes: int = ELEM_BYTES,
    ) -> "WarpBuilder":
        self._emit(MemOp(True, self._lanes_from_elems(base, elem_idx, elem_bytes)))
        return self

    def store_stream(
        self, base: int, first_elem: int, elem_bytes: int = ELEM_BYTES
    ) -> "WarpBuilder":
        idx = [first_elem + i for i in range(self.warp_size)]
        return self.store_gather(base, idx, elem_bytes)

    def load_addresses(self, lane_addrs: Sequence[Optional[int]]) -> "WarpBuilder":
        """Raw byte-address variant (synthetic generator)."""
        self._emit(MemOp(False, list(lane_addrs)))
        return self

    def store_addresses(self, lane_addrs: Sequence[Optional[int]]) -> "WarpBuilder":
        self._emit(MemOp(True, list(lane_addrs)))
        return self

    def finish(self) -> WarpTrace:
        if self._pending_compute:
            self._emit(None)
        return WarpTrace(self.sm_id, self.warp_id, self.segments)


class TraceBuilder:
    """Builds a :class:`KernelTrace`, assigning warps to SMs round-robin."""

    def __init__(self, name: str, num_sms: int, warp_size: int = 32) -> None:
        self.name = name
        self.num_sms = num_sms
        self.warp_size = warp_size
        self._warps: list[WarpBuilder] = []
        self._next_warp_per_sm = [0] * num_sms
        self._next_sm = 0

    def new_warp(self) -> WarpBuilder:
        sm = self._next_sm
        self._next_sm = (self._next_sm + 1) % self.num_sms
        wid = self._next_warp_per_sm[sm]
        self._next_warp_per_sm[sm] += 1
        wb = WarpBuilder(sm, wid, self.warp_size)
        self._warps.append(wb)
        return wb

    def build(self) -> KernelTrace:
        return KernelTrace(self.name, [wb.finish() for wb in self._warps])

    @property
    def num_warps(self) -> int:
        return len(self._warps)


def chunk_lanes(values: np.ndarray, warp_size: int = 32) -> list[np.ndarray]:
    """Split a flat element-index array into per-warp lane groups."""
    return [values[i : i + warp_size] for i in range(0, len(values), warp_size)]
