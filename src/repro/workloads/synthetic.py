"""Profile-driven synthetic irregular-workload generator.

Generates kernel traces whose *memory-system signature* matches a
:class:`~repro.workloads.profiles.BenchmarkProfile`: requests per load,
fraction of divergent loads, channel/bank spread per warp, intra-warp row
locality, shared row-hit streams, and write intensity.  Placement is exact
because addresses are synthesized through the *inverse* address map
(:meth:`AddressMap.compose`), so "this request goes to channel 3, bank 7,
row 123" means exactly that after routing.

The algorithmic kernels in ``repro.workloads.algorithms`` produce the same
signatures from real data structures; the synthetic generator exists for
controlled experiments and calibration sweeps.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import SimConfig
from repro.gpu.address_map import AddressMap
from repro.workloads.builder import ELEM_BYTES, TraceBuilder
from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.trace import KernelTrace

__all__ = ["synthetic_trace", "HotRowStreams"]


class HotRowStreams:
    """Shared streaming arrays: the cross-warp row-hit traffic the GMC loves.

    Each stream walks one channel's address space linearly, the way a
    large streaming array does under the §II-C mapping: the 16 lines of a
    row are visited back-to-back (long row-hit runs), then the stream
    rotates to the next bank — so hot traffic load-balances across banks
    instead of camping on one and starving it.
    """

    def __init__(
        self, amap: AddressMap, n_streams: int, rng: np.random.Generator
    ) -> None:
        self.amap = amap
        org = amap.org
        self.rng = rng
        self.lines_per_row = org.lines_per_row
        self.banks = org.banks_per_channel
        self.rows = org.rows_per_bank
        # [channel, line cursor within the channel's linear walk]
        self._streams = [
            [
                int(rng.integers(org.num_channels)),
                int(rng.integers(self.banks * self.rows)) * self.lines_per_row,
            ]
            for _ in range(n_streams)
        ]

    def next_line(self, preferred_channels: Optional[frozenset[int]] = None) -> int:
        if preferred_channels:
            candidates = [s for s in self._streams if s[0] in preferred_channels]
        else:
            candidates = self._streams
        if not candidates:
            candidates = self._streams
        s = candidates[int(self.rng.integers(len(candidates)))]
        ch, cursor = s
        seg, col = divmod(cursor, self.lines_per_row)
        bank_raw = seg % self.banks
        upper = seg // self.banks
        bank = bank_raw ^ (upper % self.banks)
        row = upper % self.rows
        addr = self.amap.compose(ch, bank % self.banks, row, col)
        s[1] = (cursor + 1) % (self.banks * self.rows * self.lines_per_row)
        return addr


def _sample_group_size(
    rng: np.random.Generator, profile: BenchmarkProfile, warp_size: int
) -> int:
    """Coalesced request count for one load, matching the Fig. 2 stats."""
    if rng.random() >= profile.frac_divergent:
        return 1
    mean_div = max(2.0, (profile.reqs_per_load - (1.0 - profile.frac_divergent))
                   / max(profile.frac_divergent, 1e-9))
    # 2 + geometric tail: integer >= 2 with the right mean, bounded by lanes.
    p = 1.0 / max(mean_div - 1.0, 1.0)
    n = 1 + int(rng.geometric(min(1.0, p)))
    return int(min(warp_size, max(2, n)))


def _spread_lanes(lines: list[int], warp_size: int) -> list[Optional[int]]:
    """Assign the 32 lanes across the chosen lines (contiguous runs)."""
    n = len(lines)
    lanes: list[Optional[int]] = []
    for i in range(warp_size):
        line = lines[i * n // warp_size]
        lanes.append(line + ELEM_BYTES * (i % (128 // ELEM_BYTES)))
    return lanes


def synthetic_trace(
    profile: BenchmarkProfile,
    config: SimConfig,
    seed: int = 1,
    scale: float = 1.0,
) -> KernelTrace:
    """Generate a kernel trace matching ``profile`` under ``config``'s mapping."""
    org = config.dram_org
    amap = AddressMap(org)
    rng = np.random.default_rng(seed)
    warp_size = config.gpu.warp_size
    tb = TraceBuilder(profile.name, config.gpu.num_sms, warp_size)
    hot = HotRowStreams(amap, n_streams=max(4, 2 * org.num_channels), rng=rng)

    # Scaling reduces the per-warp load count, *not* the warp count: the
    # warp population sets the thread-level parallelism that keeps the
    # memory system in the saturated regime the paper studies.
    n_warps = profile.warps
    loads_per_warp = max(3, int(round(profile.loads_per_warp * scale)))
    n_ch_base = int(profile.channels_per_warp)
    n_ch_extra = profile.channels_per_warp - n_ch_base
    banks_per_ch = max(1.0, profile.banks_per_warp)
    # Uneven channel popularity (see BenchmarkProfile.channel_balance).
    channel_weights = rng.dirichlet(
        np.full(org.num_channels, profile.channel_balance)
    )

    for _ in range(n_warps):
        wb = tb.new_warp()
        # Private working set: a few channels, a few banks each, 3 rows per bank.
        n_ch = min(org.num_channels, n_ch_base + (1 if rng.random() < n_ch_extra else 0))
        n_ch = max(1, n_ch)
        chans = rng.choice(
            org.num_channels, size=n_ch, replace=False, p=channel_weights
        )
        region: list[tuple[int, int]] = []
        for ch in chans:
            nb = int(banks_per_ch) + (1 if rng.random() < (banks_per_ch % 1.0) else 0)
            nb = max(1, min(org.banks_per_channel, nb))
            for bank in rng.choice(org.banks_per_channel, size=nb, replace=False):
                region.append((int(ch), int(bank)))
        private_rows = {
            cb: rng.integers(org.rows_per_bank, size=3).tolist() for cb in region
        }
        current_row = {cb: int(rows[0]) for cb, rows in private_rows.items()}

        warp_channels = frozenset(int(c) for c in chans)
        # Output region: stores mostly stream to fresh lines (results
        # arrays), which is what turns into DRAM write-back traffic once
        # the L2 evicts them; re-written hot lines stay cached.
        out_cb = region[int(rng.integers(len(region)))]
        out_row = int(rng.integers(org.rows_per_bank))
        out_col = 0

        def next_store_line() -> int:
            nonlocal out_row, out_col
            addr = amap.compose(out_cb[0], out_cb[1], out_row, out_col)
            out_col += 1
            if out_col >= org.lines_per_row:
                out_col = 0
                out_row = (out_row + 1) % org.rows_per_bank
            return addr

        def one_line() -> int:
            if rng.random() < profile.hot_row_frac:
                # Shared streams, but drawn from the warp's own channels so
                # the per-warp channel spread stays on profile.
                return hot.next_line(warp_channels)
            cb = region[int(rng.integers(len(region)))]
            if rng.random() < profile.intra_warp_row_frac:
                row = current_row[cb]
            else:
                row = int(private_rows[cb][int(rng.integers(3))])
                current_row[cb] = row
            col = int(rng.integers(org.lines_per_row))
            return amap.compose(cb[0], cb[1], row, col)

        for _load in range(loads_per_warp):
            wb.compute(profile.compute_per_load)
            n = _sample_group_size(rng, profile, warp_size)
            lines = [one_line() for _ in range(n)]
            wb.load_addresses(_spread_lanes(lines, warp_size))
            if rng.random() < profile.write_ratio:
                # Mostly streaming result writes plus some data-dependent
                # scatter (nw/SS/sad write both patterns).
                wlines = [
                    next_store_line() if rng.random() < 0.7 else one_line()
                    for _ in range(max(1, n))
                ]
                wb.store_addresses(_spread_lanes(wlines, warp_size))
        wb.compute(profile.compute_per_load)

    return tb.build()
