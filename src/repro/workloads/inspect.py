"""Offline trace inspection.

``trace_signature`` computes, without running a simulation, the
memory-behaviour statistics a :class:`KernelTrace` will exhibit — the same
quantities the paper's Figs. 2/3 report and the synthetic profiles are
calibrated against.  Used by the calibration tests and handy when writing
new workload generators:

    from repro.workloads.inspect import trace_signature
    sig = trace_signature(trace, SimConfig())
    print(sig.requests_per_load, sig.channels_per_divergent_load)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SimConfig
from repro.gpu.address_map import AddressMap
from repro.gpu.coalescer import coalesce
from repro.workloads.trace import KernelTrace

__all__ = ["TraceSignature", "trace_signature"]


@dataclass(frozen=True)
class TraceSignature:
    """Static memory-irregularity statistics of a kernel trace."""

    warps: int
    loads: int
    stores: int
    instructions: int
    requests_per_load: float
    frac_divergent_loads: float
    channels_per_divergent_load: float
    banks_per_divergent_load: float
    store_request_ratio: float  # store requests / load requests
    footprint_bytes: int
    distinct_rows: int

    def as_dict(self) -> dict[str, float]:
        return {
            "warps": self.warps,
            "loads": self.loads,
            "stores": self.stores,
            "instructions": self.instructions,
            "requests_per_load": self.requests_per_load,
            "frac_divergent_loads": self.frac_divergent_loads,
            "channels_per_divergent_load": self.channels_per_divergent_load,
            "banks_per_divergent_load": self.banks_per_divergent_load,
            "store_request_ratio": self.store_request_ratio,
            "footprint_bytes": self.footprint_bytes,
            "distinct_rows": self.distinct_rows,
        }


def trace_signature(trace: KernelTrace, config: SimConfig | None = None) -> TraceSignature:
    """Analyze a trace against the configured address mapping."""
    cfg = config or SimConfig()
    amap = AddressMap(cfg.dram_org)
    line_bytes = cfg.dram_org.line_bytes

    loads = stores = 0
    load_requests = store_requests = 0
    divergent = 0
    ch_spread_sum = 0
    bank_spread_sum = 0
    lines_seen: set[int] = set()
    rows_seen: set[tuple[int, int, int]] = set()
    lo = None
    hi = 0

    for w in trace.warps:
        for seg in w.segments:
            if seg.mem is None:
                continue
            lines = coalesce(seg.mem.lane_addrs, line_bytes)
            if not lines:
                continue
            if seg.mem.is_write:
                stores += 1
                store_requests += len(lines)
            else:
                loads += 1
                load_requests += len(lines)
            chans = set()
            banks = set()
            for a in lines:
                ch, bank, row, _col = amap.decompose(a)
                chans.add(ch)
                banks.add((ch, bank))
                rows_seen.add((ch, bank, row))
                lines_seen.add(a)
                lo = a if lo is None else min(lo, a)
                hi = max(hi, a + line_bytes)
            if not seg.mem.is_write and len(lines) > 1:
                divergent += 1
                ch_spread_sum += len(chans)
                bank_spread_sum += len(banks)

    return TraceSignature(
        warps=len(trace.warps),
        loads=loads,
        stores=stores,
        instructions=trace.total_instructions(),
        requests_per_load=load_requests / loads if loads else 0.0,
        frac_divergent_loads=divergent / loads if loads else 0.0,
        channels_per_divergent_load=(
            ch_spread_sum / divergent if divergent else 0.0
        ),
        banks_per_divergent_load=(
            bank_spread_sum / divergent if divergent else 0.0
        ),
        store_request_ratio=(
            store_requests / load_requests if load_requests else 0.0
        ),
        footprint_bytes=(hi - lo) if lo is not None else 0,
        distinct_rows=len(rows_seen),
    )
