"""Per-benchmark irregularity profiles.

The paper evaluates 11 irregular benchmarks (Table III) and 6 regular
ones (§VI-A).  We cannot run the CUDA binaries, so each benchmark is
described by the memory-behaviour statistics the paper reports or implies:

* ``reqs_per_load``       — mean coalesced requests per vector load
  (Fig. 2: suite mean 5.9);
* ``frac_divergent``      — fraction of loads with more than one request
  (Fig. 2: suite mean 56%);
* ``channels_per_warp``   — memory controllers a divergent warp touches
  (Fig. 3: suite mean 2.5; cfd/spmv/sssp/sp ≈ 3.2; sad/nw/SS/bfs < 2);
* ``banks_per_warp``      — banks a warp touches (§III-A: ≈ 2);
* ``intra_warp_row_frac`` — fraction of a warp's requests sharing a DRAM
  row (§III-A: ≈ 30%);
* ``write_ratio``         — stores per load, calibrated to the write
  intensities of Fig. 12 (nw/SS/sad write-heavy);
* ``hot_row_frac``        — fraction of requests landing in shared
  streaming rows (cross-warp row-hit streams the GMC exploits);
* ``compute_per_load``    — ALU cycles between memory instructions
  (controls how much latency multithreading can hide).

These drive both the synthetic generator and the scale parameters of the
algorithmic kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "BenchmarkProfile",
    "IRREGULAR_PROFILES",
    "REGULAR_PROFILES",
    "ALL_PROFILES",
    "IRREGULAR_BENCHMARKS",
    "REGULAR_BENCHMARKS",
]


@dataclass(frozen=True)
class BenchmarkProfile:
    name: str
    suite: str
    reqs_per_load: float
    frac_divergent: float
    channels_per_warp: float
    banks_per_warp: float
    intra_warp_row_frac: float = 0.30
    write_ratio: float = 0.15
    hot_row_frac: float = 0.15
    compute_per_load: int = 24
    loads_per_warp: int = 12
    warps: int = 160  # thread-level parallelism (see DESIGN.md calibration)
    # Channel load imbalance (Dirichlet concentration; lower = more skew).
    # Real kernels load channels unevenly over windows of time, which is
    # what gives the §IV-C cross-channel coordination its leverage.
    channel_balance: float = 2.0

    def scaled(self, factor: float) -> "BenchmarkProfile":
        return replace(self, warps=max(32, int(self.warps * factor)))


# --- irregular suite (Table III) -------------------------------------------
# channels_per_warp follows §VI: cfd, spmv, sssp, sp touch ~3.2 controllers;
# sad, nw, SS, bfs fewer than 2.  Write ratios follow Fig. 12 (nw, SS, sad
# write-heavy; graph workloads read-mostly).
IRREGULAR_PROFILES: dict[str, BenchmarkProfile] = {
    p.name: p
    for p in (
        BenchmarkProfile(
            "bfs", "rodinia", reqs_per_load=6.2, frac_divergent=0.62,
            channels_per_warp=1.8, banks_per_warp=2.0, write_ratio=0.18,
            hot_row_frac=0.22, compute_per_load=16,
        ),
        BenchmarkProfile(
            "cfd", "rodinia", reqs_per_load=5.0, frac_divergent=0.55,
            channels_per_warp=3.2, banks_per_warp=2.4, write_ratio=0.3,
            compute_per_load=40,
        ),
        BenchmarkProfile(
            "nw", "rodinia", reqs_per_load=3.6, frac_divergent=0.48,
            channels_per_warp=1.7, banks_per_warp=1.8, write_ratio=0.85,
            intra_warp_row_frac=0.38, hot_row_frac=0.25, compute_per_load=20,
        ),
        BenchmarkProfile(
            "kmeans", "rodinia", reqs_per_load=4.4, frac_divergent=0.52,
            channels_per_warp=2.4, banks_per_warp=2.0, write_ratio=0.25,
            compute_per_load=32,
        ),
        BenchmarkProfile(
            "PVC", "mars", reqs_per_load=7.0, frac_divergent=0.66,
            channels_per_warp=2.6, banks_per_warp=2.2, write_ratio=0.5,
            hot_row_frac=0.10, compute_per_load=18,
        ),
        BenchmarkProfile(
            "SS", "mars", reqs_per_load=5.4, frac_divergent=0.58,
            channels_per_warp=1.8, banks_per_warp=1.9, write_ratio=0.75,
            compute_per_load=22,
        ),
        BenchmarkProfile(
            "sp", "lonestar", reqs_per_load=6.6, frac_divergent=0.64,
            channels_per_warp=3.2, banks_per_warp=2.5, write_ratio=0.28,
            hot_row_frac=0.08, compute_per_load=26,
        ),
        BenchmarkProfile(
            "bh", "lonestar", reqs_per_load=7.4, frac_divergent=0.68,
            channels_per_warp=2.5, banks_per_warp=2.3, write_ratio=0.15,
            hot_row_frac=0.20, compute_per_load=36,
        ),
        BenchmarkProfile(
            "sssp", "lonestar", reqs_per_load=6.4, frac_divergent=0.63,
            channels_per_warp=3.3, banks_per_warp=2.5, write_ratio=0.25,
            hot_row_frac=0.08, compute_per_load=20,
        ),
        BenchmarkProfile(
            "spmv", "parboil", reqs_per_load=5.8, frac_divergent=0.60,
            channels_per_warp=3.2, banks_per_warp=2.4, write_ratio=0.18,
            intra_warp_row_frac=0.32, compute_per_load=24,
        ),
        BenchmarkProfile(
            "sad", "parboil", reqs_per_load=4.0, frac_divergent=0.50,
            channels_per_warp=1.5, banks_per_warp=1.6, write_ratio=0.7,
            intra_warp_row_frac=0.40, hot_row_frac=0.28, compute_per_load=28,
        ),
    )
}

# --- regular suite (§VI-A): streaming access, ~1 request per load ----------
REGULAR_PROFILES: dict[str, BenchmarkProfile] = {
    p.name: p
    for p in (
        BenchmarkProfile(
            "streamcluster", "rodinia", reqs_per_load=1.0, frac_divergent=0.0,
            channels_per_warp=1.0, banks_per_warp=1.0, intra_warp_row_frac=0.9,
            write_ratio=0.05, hot_row_frac=0.85, compute_per_load=20,
        ),
        BenchmarkProfile(
            "srad2", "rodinia", reqs_per_load=1.1, frac_divergent=0.06,
            channels_per_warp=1.1, banks_per_warp=1.1, intra_warp_row_frac=0.85,
            write_ratio=0.30, hot_row_frac=0.80, compute_per_load=28,
        ),
        BenchmarkProfile(
            "bp", "rodinia", reqs_per_load=1.0, frac_divergent=0.0,
            channels_per_warp=1.0, banks_per_warp=1.0, intra_warp_row_frac=0.9,
            write_ratio=0.25, hot_row_frac=0.85, compute_per_load=24,
        ),
        BenchmarkProfile(
            "hotspot", "rodinia", reqs_per_load=1.1, frac_divergent=0.08,
            channels_per_warp=1.1, banks_per_warp=1.1, intra_warp_row_frac=0.85,
            write_ratio=0.20, hot_row_frac=0.80, compute_per_load=40,
        ),
        BenchmarkProfile(
            "InvertedIndex", "mars", reqs_per_load=1.2, frac_divergent=0.10,
            channels_per_warp=1.2, banks_per_warp=1.2, intra_warp_row_frac=0.8,
            write_ratio=0.15, hot_row_frac=0.70, compute_per_load=18,
        ),
        BenchmarkProfile(
            "PageViewRank", "mars", reqs_per_load=1.2, frac_divergent=0.10,
            channels_per_warp=1.2, banks_per_warp=1.2, intra_warp_row_frac=0.8,
            write_ratio=0.20, hot_row_frac=0.70, compute_per_load=20,
        ),
    )
}

ALL_PROFILES = {**IRREGULAR_PROFILES, **REGULAR_PROFILES}
IRREGULAR_BENCHMARKS = tuple(IRREGULAR_PROFILES)
REGULAR_BENCHMARKS = tuple(REGULAR_PROFILES)
