"""Deterministic trace mutation operators for the fuzzing harness.

Every operator is pure: it takes a :class:`KernelTrace` plus an explicit
``numpy.random.Generator`` (or plain parameters) and returns a *new*
trace, leaving the input untouched.  Given the same inputs and generator
state the output is bit-identical, which is what makes fuzz cases and
minimized repro artifacts replayable.

The operators deliberately produce traces that are still *valid* inputs
to the SM model — lane lists keep their length, masked lanes stay
``None``, warp/SM ids are untouched — so a mutated trace stresses the
memory system, not the trace loader.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.trace import KernelTrace, MemOp, Segment, WarpTrace

__all__ = [
    "clone_trace",
    "truncate_warps",
    "truncate_segments",
    "churn_lane_masks",
    "flip_read_write",
    "flip_address_bits",
    "mutate_trace",
    "MUTATORS",
]


def clone_trace(trace: KernelTrace) -> KernelTrace:
    """Deep-copy a trace (mutation operators edit the copy in place)."""
    warps = []
    for w in trace.warps:
        segments = []
        for s in w.segments:
            mem = None
            if s.mem is not None:
                mem = MemOp(is_write=s.mem.is_write, lane_addrs=list(s.mem.lane_addrs))
            segments.append(Segment(compute_cycles=s.compute_cycles, mem=mem))
        warps.append(WarpTrace(w.sm_id, w.warp_id, segments))
    return KernelTrace(name=trace.name, warps=warps)


def truncate_warps(trace: KernelTrace, keep: list[int]) -> KernelTrace:
    """Keep only the warps at the given indices (order preserved)."""
    out = clone_trace(trace)
    index = set(keep)
    out.warps = [w for i, w in enumerate(out.warps) if i in index]
    return out


def truncate_segments(trace: KernelTrace, warp_index: int, n_segments: int) -> KernelTrace:
    """Drop all but the first ``n_segments`` segments of one warp."""
    out = clone_trace(trace)
    w = out.warps[warp_index]
    w.segments = w.segments[:n_segments]
    return out


def churn_lane_masks(
    trace: KernelTrace, rng: np.random.Generator, fraction: float = 0.1
) -> KernelTrace:
    """Randomly mask active lanes and clone addresses into masked lanes.

    Masking shrinks coalesced groups; un-masking (by duplicating a live
    neighbour's address) grows them without inventing addresses outside
    the workload's footprint.  Both directions churn the per-warp request
    counts the warp-aware schedulers key on.
    """
    out = clone_trace(trace)
    for w in out.warps:
        for s in w.segments:
            if s.mem is None:
                continue
            addrs = s.mem.lane_addrs
            live = [a for a in addrs if a is not None]
            if not live:
                continue
            for lane in range(len(addrs)):
                if rng.random() >= fraction:
                    continue
                if addrs[lane] is None:
                    addrs[lane] = int(live[int(rng.integers(len(live)))])
                else:
                    addrs[lane] = None
            if all(a is None for a in addrs):
                # Keep at least one lane live so the op still issues.
                addrs[0] = int(live[0])
    return out


def flip_read_write(
    trace: KernelTrace, rng: np.random.Generator, fraction: float = 0.1
) -> KernelTrace:
    """Flip the read/write direction of a fraction of memory ops."""
    out = clone_trace(trace)
    for w in out.warps:
        for s in w.segments:
            if s.mem is not None and rng.random() < fraction:
                s.mem.is_write = not s.mem.is_write
    return out


def flip_address_bits(
    trace: KernelTrace,
    rng: np.random.Generator,
    fraction: float = 0.05,
    max_bit: int = 30,
) -> KernelTrace:
    """XOR a random low bit into a fraction of lane addresses.

    Bits are capped below ``max_bit`` so addresses stay inside the
    decomposable physical range; a single flipped bit can move a line to
    another column, row, bank, or channel depending on its position.
    """
    out = clone_trace(trace)
    for w in out.warps:
        for s in w.segments:
            if s.mem is None:
                continue
            addrs = s.mem.lane_addrs
            for lane, addr in enumerate(addrs):
                if addr is None or rng.random() >= fraction:
                    continue
                bit = int(rng.integers(max_bit))
                addrs[lane] = addr ^ (1 << bit)
    return out


def _mutate_truncate_warps(trace: KernelTrace, rng: np.random.Generator) -> KernelTrace:
    n = len(trace.warps)
    if n <= 1:
        return clone_trace(trace)
    keep_n = int(rng.integers(1, n + 1))
    keep = sorted(rng.choice(n, size=keep_n, replace=False).tolist())
    return truncate_warps(trace, keep)


def _mutate_truncate_segments(trace: KernelTrace, rng: np.random.Generator) -> KernelTrace:
    candidates = [i for i, w in enumerate(trace.warps) if len(w.segments) > 1]
    if not candidates:
        return clone_trace(trace)
    wi = int(rng.choice(candidates))
    n_segs = len(trace.warps[wi].segments)
    return truncate_segments(trace, wi, int(rng.integers(1, n_segs)))


# Named so fuzz recipes can record which operators a case applied.
MUTATORS = {
    "truncate_warps": _mutate_truncate_warps,
    "truncate_segments": _mutate_truncate_segments,
    "churn_lane_masks": churn_lane_masks,
    "flip_read_write": flip_read_write,
    "flip_address_bits": flip_address_bits,
}


def mutate_trace(
    trace: KernelTrace,
    rng: np.random.Generator,
    operators: list[str],
) -> KernelTrace:
    """Apply the named mutation operators in order (each rng-driven)."""
    out = trace
    for name in operators:
        out = MUTATORS[name](out, rng)
    return out
