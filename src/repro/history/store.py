"""Append-only, schema-versioned run-history store.

Every measurement the repo produces — a ``repro bench`` report, a sweep
throughput report, a fuzz campaign, a paper-accuracy export — appends one
JSON line to ``results/history/<kind>.jsonl``.  A record is an envelope
(schema version, kind, sequence id, UTC timestamp, git SHA, config hash,
host + interpreter, calibration score) around the producer's own
machine-readable payload, so the dashboard can plot trajectories across
commits and machines without re-deriving provenance.

Design rules:

* **Append-only.**  Records are never rewritten; each append is one
  ``os.write`` of one complete line on an ``O_APPEND`` descriptor
  (:func:`repro.core.atomic.atomic_append_line`), so concurrent
  producers — including a fleet of distributed sweep workers — can
  never interleave bytes or garble each other's lines, and a crash can
  at worst truncate the final line — which readers skip.
* **Forward-compatible reads.**  A record whose envelope schema version
  is newer than this code understands, or whose line does not parse, is
  skipped with a :class:`warnings.warn` — never a crash.  Old stores
  stay readable forever; new stores degrade gracefully under old code.
* **Cheap by default.**  Producers ingest through
  :func:`repro.history.record_run`, which is a no-op when the store is
  disabled (``REPRO_HISTORY=0``) and never raises into the producer.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
import warnings
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.analysis.schema import HISTORY_SCHEMA, provenance_problems
from repro.core.atomic import atomic_append_line

__all__ = [
    "HistoryError",
    "HistoryRecord",
    "HistoryStore",
    "git_sha",
]

#: Kinds with first-class dashboard views, in display order.
KNOWN_KINDS = ("bench", "sweep", "fuzz", "accuracy", "benchmarks")


class HistoryError(Exception):
    """A history append was rejected (bad payload or unwritable store)."""


def git_sha(cwd: Optional[str] = None) -> str:
    """The current commit SHA, or ``"unknown"`` outside a git checkout.

    ``REPRO_GIT_SHA`` overrides (CI can stamp the exact ref it built).
    """
    env = os.environ.get("REPRO_GIT_SHA")
    if env:
        return env
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd or ".",
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def _calibration_quick() -> float:
    """A ~10 ms interpreter-speed stamp (ops/sec) for non-bench records.

    Same workload shape as :func:`repro.analysis.bench.calibrate` but a
    single short round: good enough to normalize trajectories taken on
    machines of very different speed, cheap enough to run on every
    append.
    """
    from time import perf_counter

    iterations = 100_000
    d: dict[int, int] = {}
    acc = 0
    t0 = perf_counter()
    for i in range(iterations):
        k = i & 1023
        d[k] = i
        acc += d[k] ^ (i >> 3)
        if k == 0:
            d.clear()
    dt = perf_counter() - t0
    return iterations / dt if dt > 0 else 0.0


@dataclass
class HistoryRecord:
    """One envelope + payload line of the history."""

    record_id: str
    kind: str
    created_utc: str
    git_sha: str
    config_hash: str
    host: str
    python: str
    calibration_ops_per_sec: float
    payload: dict
    schema_version: int = HISTORY_SCHEMA
    #: Producing worker identity (distributed sweeps; "" = local run).
    worker: str = ""
    #: Attempt number that produced the payload (0 = first try).
    attempt: int = 0
    #: Problems provenance validation found at read time (empty = clean).
    problems: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "id": self.record_id,
            "kind": self.kind,
            "created_utc": self.created_utc,
            "git_sha": self.git_sha,
            "config_hash": self.config_hash,
            "host": self.host,
            "python": self.python,
            "worker": self.worker,
            "attempt": self.attempt,
            "calibration_ops_per_sec": round(self.calibration_ops_per_sec, 1),
            "payload": self.payload,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "HistoryRecord":
        return cls(
            record_id=str(doc.get("id", "")),
            kind=str(doc.get("kind", "")),
            created_utc=str(doc.get("created_utc", "")),
            git_sha=str(doc.get("git_sha", "unknown")),
            config_hash=str(doc.get("config_hash", "")),
            host=str(doc.get("host", "")),
            python=str(doc.get("python", "")),
            # Schema-1 lines have neither key; the defaults make old
            # stores read as local first-attempt records, which they are.
            worker=str(doc.get("worker", "")),
            attempt=int(doc.get("attempt", 0) or 0),
            calibration_ops_per_sec=float(
                doc.get("calibration_ops_per_sec") or 0.0
            ),
            payload=doc.get("payload") or {},
            schema_version=int(doc.get("schema_version", -1)),
        )


class HistoryStore:
    """JSONL files under one directory, one file per record kind."""

    def __init__(self, root: str) -> None:
        self.root = root

    def path(self, kind: str) -> str:
        if not kind or "/" in kind or kind.startswith("."):
            raise HistoryError(f"invalid history kind {kind!r}")
        return os.path.join(self.root, f"{kind}.jsonl")

    def kinds(self) -> list[str]:
        """Record kinds present on disk (known kinds first, then others)."""
        try:
            names = sorted(
                f[: -len(".jsonl")]
                for f in os.listdir(self.root)
                if f.endswith(".jsonl")
            )
        except OSError:
            return []
        known = [k for k in KNOWN_KINDS if k in names]
        return known + [n for n in names if n not in known]

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(
        self,
        kind: str,
        payload: dict,
        *,
        config_hash: str = "",
        calibration_ops_per_sec: Optional[float] = None,
        strict: bool = True,
        worker: Optional[str] = None,
        attempt: int = 0,
    ) -> HistoryRecord:
        """Append one record; returns the stored envelope.

        ``strict=True`` rejects payloads that violate the kind's
        provenance contract (:func:`repro.analysis.schema
        .provenance_problems`); ``strict=False`` appends anyway so a
        forensic record of a malformed producer still lands somewhere.

        ``worker`` defaults to ``REPRO_WORKER_ID`` (set by cluster
        workers), so records written from inside a distributed drain
        carry their producer without the producer knowing about it.
        """
        problems = provenance_problems(kind, payload)
        if problems and strict:
            raise HistoryError("; ".join(problems))
        path = self.path(kind)
        os.makedirs(self.root, exist_ok=True)
        n = self._count_lines(path)
        calibration = (
            calibration_ops_per_sec
            if calibration_ops_per_sec is not None
            # Bench payloads already carry the full calibration loop's
            # score; reuse it instead of re-measuring.
            else float(payload.get("calibration_ops_per_sec", 0.0) or 0.0)
            if isinstance(payload, dict)
            else 0.0
        ) or _calibration_quick()
        record = HistoryRecord(
            record_id=f"{kind}-{n + 1:04d}",
            kind=kind,
            created_utc=time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            git_sha=git_sha(),
            config_hash=config_hash,
            host=platform.node() or "unknown",
            python=".".join(map(str, sys.version_info[:3])),
            calibration_ops_per_sec=calibration,
            payload=payload,
            worker=(
                worker if worker is not None
                else os.environ.get("REPRO_WORKER_ID", "")
            ),
            attempt=attempt,
            problems=problems,
        )
        atomic_append_line(
            path, json.dumps(record.to_dict(), separators=(",", ":"))
        )
        return record

    @staticmethod
    def _count_lines(path: str) -> int:
        try:
            with open(path, "rb") as fh:
                return sum(1 for _ in fh)
        except OSError:
            return 0

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def _iter_file(self, kind: str) -> Iterator[HistoryRecord]:
        path = self.path(kind)
        try:
            fh = open(path)
        except OSError:
            return
        with fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError:
                    warnings.warn(
                        f"{path}:{lineno}: unparsable history line skipped",
                        stacklevel=2,
                    )
                    continue
                record = HistoryRecord.from_dict(doc)
                if record.schema_version > HISTORY_SCHEMA or record.schema_version < 1:
                    warnings.warn(
                        f"{path}:{lineno}: unknown history schema_version "
                        f"{record.schema_version!r} skipped "
                        f"(this code understands <= {HISTORY_SCHEMA})",
                        stacklevel=2,
                    )
                    continue
                record.problems = provenance_problems(record.kind, record.payload)
                yield record

    def records(
        self, kind: Optional[str] = None, limit: Optional[int] = None
    ) -> list[HistoryRecord]:
        """Records of one kind (or all kinds), oldest first.

        ``limit`` keeps only the newest N (per call, after merging
        kinds by timestamp then id).
        """
        if kind is not None:
            out = list(self._iter_file(kind))
        else:
            out = [r for k in self.kinds() for r in self._iter_file(k)]
            out.sort(key=lambda r: (r.created_utc, r.record_id))
        if limit is not None and limit >= 0:
            out = out[-limit:]
        return out

    def latest(self, kind: str) -> Optional[HistoryRecord]:
        records = self.records(kind)
        return records[-1] if records else None

    def get(self, record_id: str) -> Optional[HistoryRecord]:
        """Look a record up by its ``<kind>-<seq>`` id."""
        kind, _, _seq = record_id.rpartition("-")
        candidates = [kind] if kind else self.kinds()
        for k in candidates:
            for record in self._iter_file(k):
                if record.record_id == record_id:
                    return record
        return None
