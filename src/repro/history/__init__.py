"""Run-history store: append-only JSONL records of every measurement.

The store itself lives in :mod:`repro.history.store`; this package front
door adds the environment-driven default plumbing the producers use:

* :func:`default_store` — the store rooted at ``$REPRO_HISTORY_DIR``
  (default ``results/history`` under the current directory);
* :func:`enabled` — ``False`` when ``REPRO_HISTORY=0`` (the test suite
  disables ingestion globally so simulations inside tests don't write
  into the working tree);
* :func:`record_run` — best-effort append used by every producer
  (``repro bench``, the sweep harness, the fuzzer, the benchmark
  conftest): silently skips when disabled, *warns* instead of raising
  on any store problem, so observability can never fail a measurement.

See docs/observability.md ("Run history & dashboard") for the record
schema and retention story.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional

from repro.history.store import (
    HistoryError,
    HistoryRecord,
    HistoryStore,
    git_sha,
)

__all__ = [
    "DEFAULT_HISTORY_DIR",
    "HistoryError",
    "HistoryRecord",
    "HistoryStore",
    "default_store",
    "enabled",
    "git_sha",
    "record_run",
]

DEFAULT_HISTORY_DIR = os.path.join("results", "history")


def enabled() -> bool:
    """Whether producers should ingest runs (``REPRO_HISTORY=0`` kills it)."""
    return os.environ.get("REPRO_HISTORY", "1") != "0"


def default_store() -> HistoryStore:
    return HistoryStore(
        os.environ.get("REPRO_HISTORY_DIR", DEFAULT_HISTORY_DIR)
    )


def record_run(
    kind: str,
    payload: dict,
    *,
    config_hash: str = "",
    store: Optional[HistoryStore] = None,
) -> Optional[HistoryRecord]:
    """Append one record from a producer; never raises.

    Returns the stored record, or ``None`` when ingestion is disabled or
    failed (an unwritable directory, a payload violating its contract —
    both reported as warnings).
    """
    if store is None:
        if not enabled():
            return None
        store = default_store()
    try:
        return store.append(kind, payload, config_hash=config_hash)
    except Exception as exc:  # noqa: BLE001 - by contract: warn, don't raise
        warnings.warn(
            f"history ingestion of a {kind!r} record failed: {exc}",
            stacklevel=2,
        )
        return None
