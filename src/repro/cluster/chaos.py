"""Process-level chaos harness for the distributed sweep backend.

PR 3's :class:`~repro.guardrails.faults.FaultInjector` breaks the
*simulator* on purpose so the guardrails can be watched catching each
fault class.  This module extends the same philosophy one level up, to
the *fleet*: it breaks worker **processes** and store **files** on
purpose so the lease protocol can be watched recovering from each fault
class (docs/distributed.md lists the classes and their detectors).

Two surfaces:

* **Chaos points** — named crash-windows compiled into the production
  code paths (``atomic-write``, ``lease-tmp``, ``lease-claimed``,
  ``worker-claimed``, ``heartbeat``, ``append-line``).  They are inert
  unless the ``REPRO_CHAOS`` environment variable arms them, so a
  subprocess under test can be told to die, stall, or freeze at an
  exact protocol step without any test-only forks in the logic itself.
* **Direct corruption helpers** — :func:`corrupt_file` /
  :func:`truncate_file` for tests that vandalize lease/record files in
  place, modelling torn writes from other tools or failing disks.

``REPRO_CHAOS`` syntax — comma-separated ``point=action`` arms::

    REPRO_CHAOS="worker-claimed=kill"          # SIGKILL at the point
    REPRO_CHAOS="heartbeat=freeze"             # stop renewing the lease
    REPRO_CHAOS="atomic-write=kill!once"       # fire on first hit only
    REPRO_CHAOS="lease-tmp=exit:3,heartbeat=stall:0.5"

Actions: ``kill`` (SIGKILL self — no cleanup handlers run, exactly like
the OOM killer), ``exit[:code]`` (``os._exit``), ``stall:<seconds>``
(sleep inside the protocol step), ``kill-after:<seconds>`` (arm a
daemon thread that SIGKILLs this process later — lands mid-simulation),
and ``freeze`` (interpreted by the heartbeat loop: silently stop
renewing, modelling a livelocked-but-alive worker).

``!once`` needs ``REPRO_CHAOS_MARK_DIR`` (a shared directory): the
first process to reach the point claims a marker file with
``O_CREAT|O_EXCL`` and acts; every later hit — including the retry of
the job the chaos just killed — passes through unharmed.  That is what
lets one env var express "the first attempt dies, the recovery must
succeed".
"""

from __future__ import annotations

import os
import signal
import threading
import time
from typing import Optional

__all__ = [
    "CHAOS_ENV",
    "MARK_DIR_ENV",
    "chaos_armed",
    "chaos_point",
    "corrupt_file",
    "truncate_file",
]

CHAOS_ENV = "REPRO_CHAOS"
MARK_DIR_ENV = "REPRO_CHAOS_MARK_DIR"


def _parse(spec: str) -> dict[str, str]:
    """``point=action[!once],...`` -> {point: action[!once]} (lenient)."""
    out: dict[str, str] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part or "=" not in part:
            continue
        point, _, action = part.partition("=")
        out[point.strip()] = action.strip()
    return out


def _claim_once(point: str) -> bool:
    """True when this process may fire a ``!once`` arm (marker claimed)."""
    mark_dir = os.environ.get(MARK_DIR_ENV)
    if not mark_dir:
        return True  # no marker dir: every hit fires (caller opted out)
    try:
        os.makedirs(mark_dir, exist_ok=True)
        fd = os.open(
            os.path.join(mark_dir, f"chaos-{point}.fired"),
            os.O_CREAT | os.O_EXCL | os.O_WRONLY,
        )
    except FileExistsError:
        return False
    except OSError:
        return True  # unusable marker dir: fail open (chaos still fires)
    os.close(fd)
    return True


def chaos_armed(point: str) -> Optional[str]:
    """The action armed at ``point`` (``!once`` resolved), or ``None``.

    Consumes the once-marker when it returns an action, so callers that
    interpret actions themselves (the heartbeat loop's ``freeze``) get
    the same fire-exactly-once semantics as :func:`chaos_point`.
    """
    spec = os.environ.get(CHAOS_ENV)
    if not spec:
        return None
    action = _parse(spec).get(point)
    if action is None:
        return None
    if action.endswith("!once"):
        action = action[: -len("!once")]
        if not _claim_once(point):
            return None
    return action


def _sigkill_self() -> None:
    os.kill(os.getpid(), signal.SIGKILL)
    time.sleep(60)  # unreachable; parks the caller until the signal lands


def chaos_point(point: str) -> Optional[str]:
    """Fire whatever is armed at ``point``; returns the action (if any).

    Generic actions (``kill``/``exit``/``stall``/``kill-after``) are
    executed here; anything else (``freeze``) is returned for the call
    site to interpret.  Unarmed points cost one env lookup.
    """
    action = chaos_armed(point)
    if action is None:
        return None
    if action == "kill":
        _sigkill_self()
    elif action.startswith("exit"):
        _, _, code = action.partition(":")
        os._exit(int(code) if code else 13)
    elif action.startswith("stall:"):
        time.sleep(float(action.split(":", 1)[1]))
    elif action.startswith("kill-after:"):
        delay = float(action.split(":", 1)[1])
        timer = threading.Timer(delay, _sigkill_self)
        timer.daemon = True
        timer.start()
    return action


# ----------------------------------------------------------------------
# direct corruption helpers (for tests; no env involved)
# ----------------------------------------------------------------------
def corrupt_file(path: str, garbage: bytes = b'{"torn": ') -> None:
    """Overwrite ``path`` with unparsable JSON in place (torn write)."""
    with open(path, "wb") as fh:
        fh.write(garbage)


def truncate_file(path: str, keep: int = 3) -> None:
    """Truncate ``path`` to its first ``keep`` bytes (partial flush)."""
    with open(path, "rb+") as fh:
        fh.truncate(keep)
