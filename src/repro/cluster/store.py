"""Shared-filesystem job store: the only coordination the fleet has.

A *run directory* is the whole database of one distributed sweep.  No
orchestrator process is required for correctness — every decision a
worker makes is a function of these files, and every mutation is a
single atomic filesystem operation:

======================  ================================================
path                    meaning
======================  ================================================
``run.json``            immutable run manifest: the resolved config
                        (as a dict), cache dir, checkpoint period,
                        lease timings, retry policy, quarantine bound
``jobs/<slug>.json``    one record per grid cell (written once by the
                        enqueuer; re-written only to heal corruption)
``leases/<slug>.lease`` claim + heartbeat (:mod:`repro.cluster.lease`)
``outcomes/<slug>.json``terminal result meta, published exclusively by
                        the finishing worker (first publisher wins)
``failures/<slug>/``    one numbered file per failed attempt — append-
                        only, so concurrent failers never read-modify-
                        write a shared counter
``quarantine/<slug>``   poison marker: N distinct owners failed this
                        job; no worker may claim it again
======================  ================================================

Per-job files are the point: concurrent writers touch *different*
paths, so nothing here ever contends on one manifest.  The classic
``sweep-manifest.json`` still exists for compatibility and resume — it
is produced by **compaction** (:func:`compact_manifest`), a read-only
fold over these records performed by whoever wants the summary.

Every read path in this module treats a corrupt file as a *recoverable
state*, never an error: corrupt job records are re-written from the
grid, corrupt outcomes are moved aside and the job re-earns one,
corrupt leases age out by mtime.  The chaos tests
(``tests/test_cluster_chaos.py``) hold the store to that contract.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Optional

from repro.cluster.lease import Lease
from repro.cluster.retry import RetryPolicy
from repro.core.atomic import atomic_write_json

__all__ = [
    "ClusterError",
    "JobStore",
    "RUN_META_NAME",
    "compact_manifest",
    "job_slug",
]

RUN_META_NAME = "run.json"
_RUN_SCHEMA = 1

#: run.json keys a store cannot operate without.
_REQUIRED_META = ("config", "cache_dir", "kind", "scale")


class ClusterError(RuntimeError):
    """The run directory is missing, foreign, or unusable."""


def job_slug(job_id: str) -> str:
    """Filesystem-safe name for one job id (ids are ``/``-separated)."""
    return job_id.replace("/", "~")


def _read_json(path: str) -> Optional[dict]:
    """Parse ``path``; ``None`` for missing *or corrupt* files."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    return doc if isinstance(doc, dict) else None


def _publish_exclusive(path: str, doc: dict) -> bool:
    """Atomically create ``path`` with full content; first writer wins.

    The document is written to a temp file and *linked* into place, so
    ``path`` either does not exist or holds a complete document — a
    publisher killed mid-write leaves only a temp orphan.
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix=".json")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(doc, fh)
        try:
            os.link(tmp, path)
        except FileExistsError:
            return False
        return True
    finally:
        try:
            os.unlink(tmp)
        except OSError:
            pass


class JobStore:
    """One distributed sweep's shared state, rooted at a directory."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        self.jobs_dir = os.path.join(self.root, "jobs")
        self.leases_dir = os.path.join(self.root, "leases")
        self.outcomes_dir = os.path.join(self.root, "outcomes")
        self.failures_dir = os.path.join(self.root, "failures")
        self.quarantine_dir = os.path.join(self.root, "quarantine")
        self._meta: Optional[dict] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, root: str, meta: dict) -> "JobStore":
        """Initialize (or re-open) a run directory with ``meta``.

        Idempotent: an existing compatible ``run.json`` is kept as-is so
        late-joining enqueuers cannot re-key a run mid-flight; an
        existing *incompatible* one raises.
        """
        store = cls(root)
        for d in (store.jobs_dir, store.leases_dir, store.outcomes_dir,
                  store.failures_dir, store.quarantine_dir):
            os.makedirs(d, exist_ok=True)
        existing = _read_json(store._meta_path())
        if existing is None:
            doc = {"schema_version": _RUN_SCHEMA, "created": time.time(), **meta}
            atomic_write_json(store._meta_path(), doc)
        else:
            store._check_meta(existing)
            if existing.get("config_hash") != meta.get("config_hash"):
                raise ClusterError(
                    f"{root} already hosts a run for config "
                    f"{existing.get('config_hash')!r}; refusing to enqueue "
                    f"config {meta.get('config_hash')!r} into it"
                )
        store._meta = None  # force re-read
        return store

    @classmethod
    def open(cls, root: str) -> "JobStore":
        """Open an existing run directory (raises if absent/foreign)."""
        store = cls(root)
        store.meta  # noqa: B018 - validates eagerly
        return store

    def _meta_path(self) -> str:
        return os.path.join(self.root, RUN_META_NAME)

    @staticmethod
    def _check_meta(doc: dict) -> None:
        if doc.get("schema_version") != _RUN_SCHEMA:
            raise ClusterError(
                f"run manifest schema {doc.get('schema_version')!r} is not "
                f"{_RUN_SCHEMA} (created by an incompatible version?)"
            )
        missing = [k for k in _REQUIRED_META if k not in doc]
        if missing:
            raise ClusterError(
                f"run manifest is missing {', '.join(missing)}"
            )

    @property
    def meta(self) -> dict:
        if self._meta is None:
            doc = _read_json(self._meta_path())
            if doc is None:
                raise ClusterError(
                    f"{self.root} has no readable {RUN_META_NAME} "
                    "(not a cluster run directory?)"
                )
            self._check_meta(doc)
            self._meta = doc
        return self._meta

    @property
    def heartbeat_s(self) -> float:
        return float(self.meta.get("heartbeat_s", 2.0))

    @property
    def lease_expiry_s(self) -> float:
        return float(self.meta.get("lease_expiry_s", 10.0))

    @property
    def retries(self) -> int:
        return int(self.meta.get("retries", 1))

    @property
    def quarantine_owners(self) -> int:
        return int(self.meta.get("quarantine_owners", 3))

    @property
    def policy(self) -> RetryPolicy:
        return RetryPolicy.from_dict(self.meta.get("policy") or {})

    # ------------------------------------------------------------------
    # job records
    # ------------------------------------------------------------------
    def ensure_jobs(self, records: list[dict]) -> int:
        """Write any missing/corrupt job records; returns how many.

        Healing is idempotent and safe under concurrency: records are
        pure functions of the grid, so the last full write of one
        record equals every other.
        """
        n = 0
        for record in records:
            path = self._job_path(record["id"])
            if _read_json(path) is None:
                atomic_write_json(path, record)
                n += 1
        return n

    def _job_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, job_slug(job_id) + ".json")

    def job_ids(self) -> list[str]:
        """Every enqueued job id (from readable records), sorted."""
        out = []
        try:
            names = os.listdir(self.jobs_dir)
        except OSError:
            return []
        for name in sorted(names):
            if not name.endswith(".json"):
                continue
            doc = _read_json(os.path.join(self.jobs_dir, name))
            if doc and "id" in doc:
                out.append(doc["id"])
        return out

    def job_record(self, job_id: str) -> Optional[dict]:
        return _read_json(self._job_path(job_id))

    # ------------------------------------------------------------------
    # leases
    # ------------------------------------------------------------------
    def lease(self, job_id: str) -> Lease:
        return Lease(
            os.path.join(self.leases_dir, job_slug(job_id) + ".lease"),
            self.lease_expiry_s,
        )

    # ------------------------------------------------------------------
    # outcomes
    # ------------------------------------------------------------------
    def _outcome_path(self, job_id: str) -> str:
        return os.path.join(self.outcomes_dir, job_slug(job_id) + ".json")

    def outcome(self, job_id: str) -> Optional[dict]:
        """The job's terminal outcome, healing corruption on the way.

        A torn outcome file is moved aside (atomic rename, so racing
        readers heal exactly once) and reported as absent — the job
        becomes claimable again and re-earns a complete outcome; the
        rerun is cheap because its summary is already in the result
        cache.
        """
        path = self._outcome_path(job_id)
        doc = _read_json(path)
        if doc is not None:
            return doc
        if os.path.exists(path):
            grave = f"{path}.corrupt-{os.getpid()}-{time.time_ns()}"
            try:
                os.rename(path, grave)
            except OSError:
                pass  # someone else healed it first
        return None

    def publish_outcome(self, job_id: str, doc: dict) -> bool:
        """Record the terminal outcome; ``False`` if someone beat us.

        Duplicate publishers are expected (duplicate claims, reclaimed
        stalls): simulation is deterministic and results content-hash
        cached, so every would-be publisher holds equivalent meta and
        first-wins is safe.
        """
        return _publish_exclusive(self._outcome_path(job_id), doc)

    # ------------------------------------------------------------------
    # failures & quarantine
    # ------------------------------------------------------------------
    def _failure_dir(self, job_id: str) -> str:
        return os.path.join(self.failures_dir, job_slug(job_id))

    def failures(self, job_id: str) -> list[dict]:
        """Readable failure records of one job, oldest first."""
        directory = self._failure_dir(job_id)
        try:
            names = sorted(os.listdir(directory))
        except OSError:
            return []
        out = []
        for name in names:
            if not name.endswith(".json"):
                continue
            doc = _read_json(os.path.join(directory, name))
            if doc is not None:
                out.append(doc)
        return out

    def record_failure(self, job_id: str, doc: dict) -> int:
        """Append one failure record; returns the total failure count.

        Records get their sequence number by exclusive creation, so two
        workers failing the same job concurrently (a duplicate-claim
        pathology) both land — there is no shared counter to corrupt.
        """
        directory = self._failure_dir(job_id)
        os.makedirs(directory, exist_ok=True)
        seq = len(os.listdir(directory)) + 1
        while True:
            path = os.path.join(directory, f"{seq:04d}.json")
            if _publish_exclusive(path, {**doc, "seq": seq}):
                return seq
            seq += 1

    def quarantine_mark(self, job_id: str, doc: dict) -> None:
        atomic_write_json(
            os.path.join(self.quarantine_dir, job_slug(job_id) + ".json"), doc
        )

    def quarantined(self, job_id: str) -> Optional[dict]:
        return _read_json(
            os.path.join(self.quarantine_dir, job_slug(job_id) + ".json")
        )

    # ------------------------------------------------------------------
    # scheduling queries
    # ------------------------------------------------------------------
    def next_eligible_s(self, job_id: str) -> float:
        """Unix time before which this job must not be retried."""
        fails = self.failures(job_id)
        if not fails:
            return 0.0
        last_ts = max(float(f.get("ts", 0.0)) for f in fails)
        return last_ts + self.policy.delay_s(len(fails), token=job_id)

    def state(self, job_id: str, now: Optional[float] = None) -> str:
        """One job's lifecycle state, derived purely from files."""
        now = time.time() if now is None else now
        outcome = self.outcome(job_id)
        if outcome is not None:
            return str(outcome.get("status", "done"))
        if self.quarantined(job_id) is not None:
            return "quarantined"
        lease = self.lease(job_id)
        info = lease.read()
        if info is not None and not lease.expired(info, now):
            return "running"
        if now < self.next_eligible_s(job_id):
            return "backoff"
        return "pending"

    def snapshot(self, now: Optional[float] = None) -> dict:
        """{state: [job_id, ...]} over every enqueued job."""
        now = time.time() if now is None else now
        out: dict[str, list[str]] = {}
        for job_id in self.job_ids():
            out.setdefault(self.state(job_id, now), []).append(job_id)
        return out

    def all_terminal(self) -> bool:
        """True when every job is done, failed, or quarantined."""
        for job_id in self.job_ids():
            if self.outcome(job_id) is None and self.quarantined(job_id) is None:
                return False
        return True


def compact_manifest(store: JobStore, manifest_name: Optional[str] = None) -> dict:
    """Fold per-job outcome records into the classic sweep manifest.

    The manifest (``sweep-manifest.json`` in the run's *cache dir*) is
    what ``run_sweep(resume=True)`` and every existing tool read; in
    cluster mode nobody writes it during the drain — concurrent workers
    only touch their per-job files — and this compaction derives it
    afterwards.  Any process may compact at any time: the fold is
    deterministic over the store, so concurrent compactors write
    equivalent documents.  Returns the manifest jobs mapping.
    """
    # Local import: sweep pulls in the full analysis stack, which the
    # store's other callers (workers, status) do not need.
    from repro.analysis.sweep import MANIFEST_NAME, _save_manifest, load_manifest

    name = manifest_name or store.meta.get("manifest_name") or MANIFEST_NAME
    cache_dir = store.meta["cache_dir"]
    manifest = load_manifest(cache_dir, name)
    for job_id in store.job_ids():
        outcome = store.outcome(job_id)
        if outcome is None:
            quarantine = store.quarantined(job_id)
            if quarantine is None:
                continue  # still pending/running: not manifest material
            outcome = {
                "status": "failed",
                "error": quarantine.get("error", "quarantined"),
                "error_type": "Quarantined",
                "retries": quarantine.get("failures", 0),
            }
        manifest[job_id] = {
            "status": outcome.get("status", "done"),
            "simulated": outcome.get("simulated", False),
            "wall_s": outcome.get("wall_s", 0.0),
            "sim_events": outcome.get("sim_events", 0.0),
            "sim_wall_s": outcome.get("sim_wall_s", 0.0),
            "retries": outcome.get("retries", 0),
            "error": outcome.get("error", ""),
            "error_type": outcome.get("error_type", ""),
            "checkpoint": outcome.get("checkpoint", ""),
            "worker": outcome.get("worker", ""),
        }
    _save_manifest(cache_dir, manifest, name)
    return manifest
