"""One retry policy for every retry path: seeded exponential backoff.

Before this module, each dispatch path invented its own retry timing:
the local process pool resubmitted failed jobs *immediately* (a
deterministic crash re-fired as fast as the pool could spin), and the
cluster needed per-attempt spacing anyway.  Both now share one
:class:`RetryPolicy` value that lives in ``run_sweep``'s signature and
in the cluster run manifest, so a grid behaves identically whether it
is drained by the local pool or by a fleet of lease-based workers.

The jitter is **seeded**, not sampled: the delay for ``(seed, token,
attempt)`` is a pure function, so reruns of a sweep back off on the
exact same schedule — determinism is a feature everywhere else in this
repo and retry timing is no exception.  Distinct jobs still decorrelate
(the token folds in the job id), which is the point of jitter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic per-(job, attempt) jitter.

    ``delay_s(1)`` is the wait before the first retry; each further
    attempt doubles (``multiplier``) up to ``cap_s``.  ``jitter`` is the
    fraction of the raw delay that the seeded draw may shave off, i.e.
    the delay lands in ``[raw * (1 - jitter), raw]``.
    """

    base_s: float = 0.25
    cap_s: float = 30.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_s < 0 or self.cap_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter is a fraction in [0, 1]")

    def delay_s(self, attempt: int, token: str = "") -> float:
        """Seconds to wait before retry number ``attempt`` (1-based).

        ``token`` decorrelates independent retry streams (pass the job
        id); the same ``(seed, token, attempt)`` always yields the same
        delay.
        """
        if attempt <= 0:
            return 0.0
        raw = min(self.cap_s, self.base_s * self.multiplier ** (attempt - 1))
        if raw <= 0.0 or self.jitter == 0.0:
            return raw
        draw = random.Random(f"{self.seed}|{token}|{attempt}").random()
        return raw * (1.0 - self.jitter * draw)

    def to_dict(self) -> dict:
        return {
            "base_s": self.base_s,
            "cap_s": self.cap_s,
            "multiplier": self.multiplier,
            "jitter": self.jitter,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "RetryPolicy":
        return cls(
            base_s=float(doc.get("base_s", 0.25)),
            cap_s=float(doc.get("cap_s", 30.0)),
            multiplier=float(doc.get("multiplier", 2.0)),
            jitter=float(doc.get("jitter", 0.5)),
            seed=int(doc.get("seed", 0)),
        )
