"""Atomic lease files: how workers claim jobs without a coordinator.

A lease is one JSON file per job under ``<run>/leases/``.  The whole
protocol rests on two POSIX atomicities:

* **Claim** = ``os.link(tmp, lease)``.  The owner writes its full lease
  document to a private temp file first, then *links* it into place —
  link fails with ``EEXIST`` if any lease exists, and succeeds with the
  complete document already in the file.  A partially-written lease is
  therefore *unrepresentable*: a worker killed mid-claim leaves only a
  ``.tmp-*`` orphan, never a half lease (pinned by the chaos tests).
* **Steal** = ``os.rename(lease, graveyard)``.  Reclaiming an expired
  lease never uses ``unlink`` — two racing reclaimers could otherwise
  each unlink-then-claim and both "win".  Rename is an atomic
  compare-and-take: exactly one reclaimer moves the stale file aside
  (the loser gets ``ENOENT`` and falls back to the normal claim race),
  and a heartbeat renewal that lands concurrently simply re-creates the
  file, making the thief's subsequent link fail.

**Renewal** rewrites the document via temp + ``os.replace`` and verifies
ownership first; a worker whose lease was stolen (it stalled past the
expiry, someone else reclaimed) learns so from :meth:`Lease.renew`
returning ``False`` and must treat its job as lost.  Results stay
correct under even a *successful* duplicate execution because the
result store is content-addressed and the simulator deterministic: both
owners would publish byte-identical documents.

Corrupt or truncated lease files (torn by a failing disk, or by the
chaos harness) carry no readable heartbeat; their *mtime* stands in for
it, so corruption converges to ordinary expiry — detected, aged, then
reclaimed.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Optional

from repro.cluster.chaos import chaos_point

__all__ = ["Lease", "LeaseInfo"]


@dataclass(frozen=True)
class LeaseInfo:
    """A parsed lease document (or its mtime stand-in when corrupt)."""

    owner: str
    heartbeat: float  # unix seconds of the last renewal
    attempt: int
    claimed: float  # unix seconds of the original claim
    corrupt: bool = False

    def age_s(self, now: Optional[float] = None) -> float:
        return (time.time() if now is None else now) - self.heartbeat


class Lease:
    """The lease file of one job (``<run>/leases/<slug>.lease``)."""

    def __init__(self, path: str, expiry_s: float) -> None:
        self.path = path
        self.expiry_s = expiry_s

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def read(self) -> Optional[LeaseInfo]:
        """The current lease, ``None`` if the job is unclaimed.

        An unparsable file is still a lease (someone holds the slot) —
        it reports ``corrupt=True`` with its mtime as the heartbeat, so
        it expires on the normal schedule instead of wedging the job.
        """
        try:
            with open(self.path) as fh:
                doc = json.load(fh)
            return LeaseInfo(
                owner=str(doc["owner"]),
                heartbeat=float(doc["heartbeat"]),
                attempt=int(doc.get("attempt", 0)),
                claimed=float(doc.get("claimed", doc["heartbeat"])),
            )
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            pass
        try:  # corrupt: fall back to file mtime as the heartbeat
            mtime = os.stat(self.path).st_mtime
        except OSError:
            return None  # vanished between open and stat: unclaimed
        return LeaseInfo(
            owner="", heartbeat=mtime, attempt=0, claimed=mtime, corrupt=True
        )

    def expired(self, info: Optional[LeaseInfo] = None,
                now: Optional[float] = None) -> bool:
        info = self.read() if info is None else info
        if info is None:
            return False  # nothing to expire
        return info.age_s(now) > self.expiry_s

    # ------------------------------------------------------------------
    # claiming
    # ------------------------------------------------------------------
    def _document(self, owner: str, attempt: int, claimed: float) -> dict:
        return {
            "owner": owner,
            "heartbeat": time.time(),
            "attempt": attempt,
            "claimed": claimed,
        }

    def _write_tmp(self, doc: dict) -> str:
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix=".lease")
        with os.fdopen(fd, "w") as fh:
            json.dump(doc, fh)
        return tmp

    def try_claim(self, owner: str, attempt: int = 0) -> bool:
        """Attempt an atomic claim; reclaims an expired lease first.

        Returns ``True`` iff this worker now owns the job.  Loses
        cleanly (``False``) to any concurrent claimer or to a lease that
        is still being heartbeated.
        """
        info = self.read()
        if info is not None:
            if not self.expired(info):
                return False
            # Stale: steal by atomic rename (exactly one thief wins).
            grave = f"{self.path}.reclaimed-{os.getpid()}-{time.time_ns()}"
            try:
                os.rename(self.path, grave)
            except OSError:
                return False  # someone else stole (or the owner renewed)
            try:
                os.unlink(grave)
            except OSError:
                pass
        tmp = self._write_tmp(self._document(owner, attempt, time.time()))
        chaos_point("lease-tmp")  # crash window: doc written, not yet linked
        try:
            os.link(tmp, self.path)
        except FileExistsError:
            return False  # lost the claim race
        except OSError:
            return False  # filesystem without hard links etc.: treat as lost
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        chaos_point("lease-claimed")  # crash window: owned, work not started
        return True

    # ------------------------------------------------------------------
    # renewal / release
    # ------------------------------------------------------------------
    def renew(self, owner: str, attempt: int = 0) -> bool:
        """Refresh the heartbeat; ``False`` when ownership was lost.

        Verifies the on-disk owner before rewriting, so a worker whose
        lease expired and was reclaimed detects the takeover instead of
        silently overwriting the new owner's heartbeat.
        """
        info = self.read()
        if info is None or info.corrupt or info.owner != owner:
            return False
        tmp = self._write_tmp(
            self._document(owner, attempt, info.claimed)
        )
        try:
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        return True

    def release(self, owner: str) -> None:
        """Drop the lease if (and only if) this worker still owns it."""
        info = self.read()
        if info is None or info.owner != owner:
            return
        try:
            os.unlink(self.path)
        except OSError:
            pass
