"""Worker agents: claim, heartbeat, simulate, publish — repeat.

A worker is any process pointed at a run directory.  Workers never talk
to each other and never hold in-memory state another worker needs: the
whole protocol is the files in :mod:`repro.cluster.store`, which is why
SIGKILLing one (the chaos harness does, on purpose) costs at most one
lease-expiry of latency and zero correctness.

Per claimed job a worker:

1. atomically claims the lease (``attempt`` = failures so far + 1);
2. starts a heartbeat thread renewing the lease every ``heartbeat_s``
   — a renewal that discovers the lease was reclaimed (this worker
   stalled past the expiry) marks the job *lost* so the worker knows
   its result is a duplicate;
3. runs the job through the exact single-process path
   (:func:`repro.analysis.runner.run_one_job`): same content-hash
   result cache, same checkpoint/resume — a job reclaimed from a
   crashed worker resumes from the victim's last snapshot and is
   bit-identical to an uninterrupted run (PR 3's restore guarantee);
4. publishes the terminal outcome exclusively (first publisher wins)
   and releases the lease.

Failures append per-attempt records; the job retries under seeded
backoff (:class:`~repro.cluster.retry.RetryPolicy`) until its budget is
spent — or until ``quarantine_owners`` *distinct* workers have failed
it, at which point it is quarantined as poison: one pathological config
stops costing the fleet anything, instead of wedging every worker that
touches it in turn.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.cluster.chaos import chaos_point
from repro.cluster.store import JobStore
from repro.core.atomic import atomic_write_json

__all__ = ["ClusterWorker", "WorkerStats", "default_worker_id"]

_POLL_S = 0.2  # idle wait between claim scans


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass
class WorkerStats:
    """What one drain loop did (the CLI prints this as JSON)."""

    worker_id: str = ""
    claims: int = 0
    reclaims: int = 0  # claims that took over an expired/corrupt lease
    done: int = 0
    failed_attempts: int = 0
    quarantined: int = 0
    lost_leases: int = 0  # finished a job whose lease had been taken over
    wall_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "worker_id": self.worker_id,
            "claims": self.claims,
            "reclaims": self.reclaims,
            "done": self.done,
            "failed_attempts": self.failed_attempts,
            "quarantined": self.quarantined,
            "lost_leases": self.lost_leases,
            "wall_s": round(self.wall_s, 4),
        }


class _Heartbeat(threading.Thread):
    """Renews one lease until stopped; detects takeover and chaos.

    ``REPRO_CHAOS="heartbeat=freeze"`` makes this thread silently stop
    renewing while the simulation keeps running — the live-but-stalled
    worker the expiry/reclaim path exists for.  ``heartbeat=stall:S``
    delays renewals; ``heartbeat=kill`` dies mid-simulation.
    """

    def __init__(self, lease, owner: str, attempt: int, period_s: float) -> None:
        super().__init__(daemon=True, name=f"heartbeat-{owner}")
        self.lease = lease
        self.owner = owner
        self.attempt = attempt
        self.period_s = period_s
        self.lost = threading.Event()
        # NB: not named _stop — Thread.join() calls an internal _stop().
        self._halt = threading.Event()
        self._frozen = False

    def run(self) -> None:
        while not self._halt.wait(self.period_s):
            action = chaos_point("heartbeat")
            if action == "freeze":
                self._frozen = True
            if self._frozen:
                continue
            if not self.lease.renew(self.owner, self.attempt):
                self.lost.set()
                return  # ownership gone: stop touching the file

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=self.period_s + 5.0)


class ClusterWorker:
    """One agent draining a run directory (in-process or via the CLI)."""

    def __init__(
        self,
        store: JobStore,
        worker_id: Optional[str] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.store = store
        self.worker_id = worker_id or default_worker_id()
        self._say = progress if progress is not None else (lambda _m: None)
        self.stats = WorkerStats(worker_id=self.worker_id)
        self._config = None  # reconstructed lazily from run.json
        self._naming_runner = None
        # Anything this worker writes to the run-history store carries
        # its identity (docs/distributed.md, docs/observability.md).
        os.environ.setdefault("REPRO_WORKER_ID", self.worker_id)

    # ------------------------------------------------------------------
    # payload reconstruction
    # ------------------------------------------------------------------
    def _build_config(self):
        if self._config is None:
            from repro.fuzz.artifact import config_from_dict

            self._config = config_from_dict(self.store.meta["config"])
        return self._config

    def _runner(self):
        """A runner used only for cache/checkpoint *naming*."""
        if self._naming_runner is None:
            from repro.analysis.runner import ExperimentRunner
            from repro.workloads.suite import Scale

            meta = self.store.meta
            self._naming_runner = ExperimentRunner(
                config=self._build_config(),
                scale=Scale[meta["scale"]],
                seeds=(1,),
                kind=meta["kind"],
                cache_dir=meta["cache_dir"],
                checkpoint_period_ns=float(meta.get("checkpoint_period_ns", 0.0)),
                trace_paths=meta.get("trace_paths") or None,
            )
        return self._naming_runner

    def _payload(self, record: dict) -> tuple:
        meta = self.store.meta
        return (
            self._build_config(),
            record["scale"],
            record["kind"],
            record["bench"],
            record["scheduler"],
            record["seed"],
            record["perfect"],
            meta["cache_dir"],
            float(meta.get("checkpoint_period_ns", 0.0)),
            meta.get("trace_paths") or None,
        )

    def _checkpoint_of(self, record: dict) -> str:
        path = self._runner().checkpoint_path(
            record["bench"], record["scheduler"], record["seed"],
            record["perfect"],
        )
        return path if path and os.path.exists(path) else ""

    # ------------------------------------------------------------------
    # one job
    # ------------------------------------------------------------------
    def _run_job(self, job_id: str, attempt: int) -> None:
        from repro.analysis.runner import run_one_job

        store, say = self.store, self._say
        record = store.job_record(job_id)
        if record is None:
            return  # record vanished/corrupt: the enqueuer will heal it
        lease = store.lease(job_id)
        chaos_point("worker-claimed")  # crash window: owned, nothing run yet
        heartbeat = _Heartbeat(
            lease, self.worker_id, attempt, store.heartbeat_s
        )
        heartbeat.start()
        t0 = time.time()
        say(f"[cluster {self.worker_id}] attempt {attempt} on {job_id}")
        try:
            _key, _summary, meta = run_one_job(self._payload(record))
        except Exception as exc:  # noqa: BLE001 - every job error is data
            heartbeat.stop()
            self._record_failure(
                job_id, record, attempt, time.time() - t0,
                str(exc), type(exc).__name__,
            )
            lease.release(self.worker_id)
            return
        heartbeat.stop()
        if heartbeat.lost.is_set():
            # We stalled past the expiry and someone reclaimed the job.
            # Publishing is still safe (deterministic result, exclusive
            # create, first winner keeps the file) — but count it: the
            # chaos tests assert takeovers are *detected*, not silent.
            self.stats.lost_leases += 1
            say(f"[cluster {self.worker_id}] lease lost mid-job on {job_id}")
        outcome = {
            "status": "done",
            "simulated": bool(meta["simulated"]),
            "resumed": bool(meta.get("resumed", False)),
            "wall_s": round(time.time() - t0, 4),
            "sim_events": meta["sim_events"],
            "sim_wall_s": meta["sim_wall_s"],
            "retries": attempt - 1,
            "error": "",
            "error_type": "",
            "checkpoint": "",
            "worker": self.worker_id,
            "ts": time.time(),
        }
        if store.publish_outcome(job_id, outcome):
            self.stats.done += 1
        lease.release(self.worker_id)

    def _record_failure(
        self, job_id: str, record: dict, attempt: int, wall_s: float,
        error: str, error_type: str,
    ) -> None:
        store, say = self.store, self._say
        self.stats.failed_attempts += 1
        checkpoint = self._checkpoint_of(record)
        store.record_failure(job_id, {
            "owner": self.worker_id,
            "ts": time.time(),
            "attempt": attempt,
            "wall_s": round(wall_s, 4),
            "error": error,
            "error_type": error_type,
            "checkpoint": checkpoint,
        })
        fails = store.failures(job_id)
        owners = {f.get("owner", "") for f in fails}
        if len(owners) >= store.quarantine_owners:
            # Poison: the job fails under *distinct* workers, so the
            # problem travels with the config, not the host.  Freeze it.
            store.quarantine_mark(job_id, {
                "error": error,
                "error_type": error_type,
                "failures": len(fails),
                "owners": sorted(owners),
                "ts": time.time(),
            })
            self.stats.quarantined += 1
            say(f"[cluster {self.worker_id}] QUARANTINED {job_id} "
                f"({len(owners)} distinct owners failed it)")
        elif len(fails) > store.retries:
            store.publish_outcome(job_id, {
                "status": "failed",
                "simulated": False,
                "wall_s": round(wall_s, 4),
                "sim_events": 0.0,
                "sim_wall_s": 0.0,
                "retries": len(fails) - 1,
                "error": error,
                "error_type": error_type,
                "checkpoint": checkpoint,
                "worker": self.worker_id,
                "ts": time.time(),
            })
            say(f"[cluster {self.worker_id}] FAILED {job_id}: {error}")
        else:
            say(f"[cluster {self.worker_id}] attempt {attempt} failed on "
                f"{job_id} (will back off): {error}")

    # ------------------------------------------------------------------
    # drain loop
    # ------------------------------------------------------------------
    def drain(
        self,
        max_jobs: Optional[int] = None,
        wait: bool = True,
        poll_s: float = _POLL_S,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> WorkerStats:
        """Claim-and-run until the sweep is terminal (or budget spent).

        ``wait=False`` returns as soon as nothing is claimable (useful
        for opportunistic helpers); the default keeps polling through
        other workers' leases and backoff windows so the last agent
        standing always finishes the sweep.  ``should_stop`` is checked
        between jobs (the orchestrator threads one through to bail out
        when its harvest completes).
        """
        t0 = time.time()
        store = self.store
        while True:
            if should_stop is not None and should_stop():
                break
            now = time.time()
            open_jobs = [
                j for j in store.job_ids()
                if store.outcome(j) is None and store.quarantined(j) is None
            ]
            if not open_jobs:
                break
            claimed = False
            for job_id in open_jobs:
                if store.state(job_id, now) != "pending":
                    continue
                lease = store.lease(job_id)
                was_held = lease.read() is not None  # expired or corrupt
                attempt = len(store.failures(job_id)) + 1
                if not lease.try_claim(self.worker_id, attempt):
                    continue
                self.stats.claims += 1
                if was_held:
                    self.stats.reclaims += 1
                    self._say(
                        f"[cluster {self.worker_id}] reclaimed expired "
                        f"lease on {job_id}"
                    )
                self._run_job(job_id, attempt)
                claimed = True
                break
            if claimed:
                if max_jobs is not None and self.stats.claims >= max_jobs:
                    break
                continue
            if not wait:
                break
            time.sleep(poll_s)
        self.stats.wall_s = time.time() - t0
        return self.stats

    def write_stats(self, path: str) -> None:
        atomic_write_json(path, self.stats.to_dict())
