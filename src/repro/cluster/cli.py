"""``repro cluster ...`` — operate a distributed sweep by hand.

Four verbs over one run directory (argparse wiring lives in
``repro.__main__``; this module only implements the commands):

* ``init``   — expand a grid (or a scenario spec) into per-job records.
* ``worker`` — run one agent against the directory until the sweep is
  terminal.  Any number may run concurrently, started and SIGKILLed at
  will, on any host sharing the filesystem.
* ``drain``  — convenience: spawn N local worker processes, wait for
  them, compact the manifest, print the final state.
* ``status`` — the store's derived per-job states, human or JSON.

``run_sweep(cluster_dir=...)`` does all of this in one call; these
verbs exist for the chaos tests, for CI, and for actually operating a
long sweep (enqueue once, attach workers as machines free up).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

from repro.cluster.store import JobStore, compact_manifest
from repro.cluster.worker import ClusterWorker, default_worker_id

__all__ = ["run"]


def _say(message: str) -> None:
    print(message, file=sys.stderr)


def _expand_jobs(args) -> tuple:
    """(runner, jobs, retries) for ``init`` from either grid source."""
    from repro.analysis.sweep import SweepJob

    if args.spec is not None:
        from repro.scenarios import load_spec
        from repro.scenarios.runner import build_runner

        spec = load_spec(args.spec)
        runner = build_runner(
            spec, cache_dir=args.cache_dir, scale=args.scale
        )
        benchmarks = list(spec.workload.names)
        schedulers = list(spec.schedulers)
        perfect = spec.perfect
        retries = spec.retries if args.retries is None else args.retries
    else:
        from repro.analysis.runner import ExperimentRunner
        from repro.workloads.suite import Scale

        if not args.benchmarks or not args.schedulers:
            raise SystemExit(
                "repro cluster init: error: give --spec FILE, or both "
                "--benchmarks and --schedulers"
            )
        runner = ExperimentRunner(
            scale=Scale[(args.scale or "quick").upper()],
            seeds=tuple(args.seeds or (1, 2)),
            kind=args.kind or "synthetic",
            cache_dir=args.cache_dir,
        )
        benchmarks = args.benchmarks
        schedulers = args.schedulers
        perfect = args.perfect
        retries = 1 if args.retries is None else args.retries

    jobs, seen = [], set()
    for bench in benchmarks:
        for sched in schedulers:
            for seed in runner.seeds:
                job = SweepJob(
                    kind=runner.kind, bench=bench, scheduler=sched,
                    scale=runner.scale.name, seed=seed, perfect=perfect,
                    config_hash=runner.config_hash,
                )
                if job.job_id not in seen:
                    seen.add(job.job_id)
                    jobs.append(job)
    return runner, jobs, retries


def cmd_init(args) -> int:
    from repro.analysis.sweep import cluster_job_records, cluster_run_meta
    from repro.cluster.retry import RetryPolicy

    runner, jobs, retries = _expand_jobs(args)
    os.makedirs(args.cache_dir, exist_ok=True)
    store = JobStore.create(
        args.dir,
        cluster_run_meta(
            runner,
            retries=retries,
            policy=RetryPolicy(seed=args.backoff_seed),
            heartbeat_s=args.heartbeat,
            lease_expiry_s=args.lease_expiry,
            quarantine_owners=args.quarantine_owners,
        ),
    )
    n_new = store.ensure_jobs(cluster_job_records(jobs))
    print(
        f"[cluster] {store.root}: {n_new} job(s) enqueued, "
        f"{len(jobs) - n_new} already present "
        f"(config {runner.config_hash})"
    )
    return 0


def cmd_worker(args) -> int:
    store = JobStore.open(args.dir)
    worker = ClusterWorker(store, worker_id=args.worker_id, progress=_say)
    stats = worker.drain(max_jobs=args.max_jobs, wait=not args.no_wait)
    print(json.dumps(stats.to_dict()))
    if args.stats_out:
        worker.write_stats(args.stats_out)
    return 0


def cmd_drain(args) -> int:
    store = JobStore.open(args.dir)
    env = dict(os.environ)
    procs = []
    for i in range(max(1, args.workers)):
        procs.append(subprocess.Popen(
            [
                sys.executable, "-m", "repro", "cluster", "worker",
                store.root, "--worker-id", f"drain{i}-{default_worker_id()}",
            ],
            env=env,
        ))
    _say(f"[cluster] draining {store.root} with {len(procs)} worker(s)")
    failed_procs = 0
    for proc in procs:
        if proc.wait() != 0:
            failed_procs += 1
    manifest = compact_manifest(store)
    snapshot = store.snapshot()
    counts = {state: len(ids) for state, ids in sorted(snapshot.items())}
    print(f"[cluster] drain finished: {counts} "
          f"({len(manifest)} manifest row(s) compacted)")
    bad = sum(
        counts.get(state, 0) for state in ("failed", "quarantined")
    )
    return 1 if (bad or failed_procs or not store.all_terminal()) else 0


def cmd_status(args) -> int:
    store = JobStore.open(args.dir)
    now = time.time()
    if args.json:
        doc = {
            "root": store.root,
            "config_hash": store.meta.get("config_hash", ""),
            "states": store.snapshot(now),
            "terminal": store.all_terminal(),
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    snapshot = store.snapshot(now)
    total = sum(len(ids) for ids in snapshot.values())
    print(f"[cluster] {store.root}: {total} job(s), "
          f"config {store.meta.get('config_hash', '?')}")
    for state in sorted(snapshot):
        for job_id in snapshot[state]:
            detail = ""
            if state == "running":
                info = store.lease(job_id).read()
                if info is not None:
                    detail = f"  owner={info.owner} age={info.age_s(now):.1f}s"
            elif state in ("failed", "quarantined", "backoff"):
                detail = f"  failures={len(store.failures(job_id))}"
            print(f"  {state:<12} {job_id}{detail}")
    return 0


def run(args) -> int:
    """Dispatch an already-parsed ``repro cluster`` namespace."""
    from repro.cluster.store import ClusterError

    handler = {
        "init": cmd_init,
        "worker": cmd_worker,
        "drain": cmd_drain,
        "status": cmd_status,
    }[args.action]
    try:
        return handler(args)
    except ClusterError as exc:
        print(f"repro cluster {args.action}: error: {exc}", file=sys.stderr)
        return 2
