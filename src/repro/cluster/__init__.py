"""Fault-tolerant distributed sweep backend (lease-based workers).

Independent worker processes cooperatively drain one sweep through a
shared-filesystem job store — no coordinator, no sockets, no queues.
Crashes, stalls, and torn files are first-class states with recovery
paths, exercised on purpose by :mod:`repro.cluster.chaos` and pinned by
``tests/test_cluster_chaos.py``.  See ``docs/distributed.md`` for the
lease protocol and the failure-mode table.

Layout:

* :mod:`repro.cluster.chaos` — env-armed chaos points + corruption
  helpers (stdlib-only; safe to import from anywhere).
* :mod:`repro.cluster.retry` — the seeded :class:`RetryPolicy` shared
  with the local pool.
* :mod:`repro.cluster.lease` — atomic claim/renew/steal lease files.
* :mod:`repro.cluster.store` — the per-job record/outcome/failure store
  and manifest compaction.
* :mod:`repro.cluster.worker` — the claim-heartbeat-simulate-publish
  drain loop.
* :mod:`repro.cluster.cli` — ``repro cluster init|worker|drain|status``.

This ``__init__`` is deliberately lazy (PEP 562): ``repro.core.atomic``
imports ``repro.cluster.chaos``, which executes this module — eagerly
importing the worker here would cycle back through the analysis stack.
"""

from __future__ import annotations

__all__ = [
    "ClusterError",
    "ClusterWorker",
    "JobStore",
    "Lease",
    "LeaseInfo",
    "RetryPolicy",
    "WorkerStats",
    "chaos_armed",
    "chaos_point",
    "compact_manifest",
    "corrupt_file",
    "default_worker_id",
    "job_slug",
    "truncate_file",
]

_HOMES = {
    "ClusterError": "repro.cluster.store",
    "ClusterWorker": "repro.cluster.worker",
    "JobStore": "repro.cluster.store",
    "Lease": "repro.cluster.lease",
    "LeaseInfo": "repro.cluster.lease",
    "RetryPolicy": "repro.cluster.retry",
    "WorkerStats": "repro.cluster.worker",
    "chaos_armed": "repro.cluster.chaos",
    "chaos_point": "repro.cluster.chaos",
    "compact_manifest": "repro.cluster.store",
    "corrupt_file": "repro.cluster.chaos",
    "default_worker_id": "repro.cluster.worker",
    "job_slug": "repro.cluster.store",
    "truncate_file": "repro.cluster.chaos",
}


def __getattr__(name: str):
    try:
        home = _HOMES[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(home), name)


def __dir__() -> list[str]:
    return sorted(__all__)
