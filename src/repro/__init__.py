"""repro: warp-aware GPU DRAM scheduling.

A from-scratch, trace-driven GPU + GDDR5 memory-system simulator
reproducing "Managing DRAM Latency Divergence in Irregular GPGPU
Applications" (SC 2014): the GMC baseline controller, the WG / WG-M /
WG-Bw / WG-W warp-aware scheduling policies, the SBWAS and WAFCFS
comparison schedulers, the irregular and regular workload suites, and a
harness regenerating every table and figure of the paper's evaluation.

Quick start::

    from repro import SimConfig, simulate, build_benchmark, Scale

    cfg = SimConfig(scheduler="wg-w")
    trace = build_benchmark("bfs", cfg, Scale.QUICK)
    stats = simulate(cfg, trace)
    print(stats.summary())
"""

from repro.core.config import (
    CacheConfig,
    DRAMOrgConfig,
    DRAMTimingConfig,
    GPUConfig,
    MCConfig,
    SimConfig,
)
from repro.core.stats import SimStats
from repro.gpu.system import GPUSystem, simulate
from repro.mc.registry import PAPER_SCHEDULERS, SCHEDULERS
from repro.telemetry import TelemetryHub
from repro.workloads.profiles import (
    ALL_PROFILES,
    IRREGULAR_BENCHMARKS,
    REGULAR_BENCHMARKS,
)
from repro.workloads.suite import Scale, benchmark_names, build_benchmark
from repro.workloads.synthetic import synthetic_trace
from repro.workloads.trace import KernelTrace, MemOp, Segment, WarpTrace

__version__ = "1.0.0"

__all__ = [
    "ALL_PROFILES",
    "CacheConfig",
    "DRAMOrgConfig",
    "DRAMTimingConfig",
    "GPUConfig",
    "GPUSystem",
    "IRREGULAR_BENCHMARKS",
    "KernelTrace",
    "MCConfig",
    "MemOp",
    "PAPER_SCHEDULERS",
    "REGULAR_BENCHMARKS",
    "SCHEDULERS",
    "Scale",
    "Segment",
    "SimConfig",
    "SimStats",
    "TelemetryHub",
    "WarpTrace",
    "benchmark_names",
    "build_benchmark",
    "simulate",
    "synthetic_trace",
    "__version__",
]
