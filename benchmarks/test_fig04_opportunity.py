"""E-F4: regenerate Fig. 4 (room for improvement).

Paper: perfect coalescing (one request per load) is worth ~5x — an
unrealizable bound; zero main-memory latency divergence is worth +43%,
the true headroom of warp-aware scheduling.
"""

from repro.analysis.experiments import fig4_opportunity

from conftest import emit


def test_fig4_opportunity(runner, benchmark):
    result = benchmark.pedantic(
        fig4_opportunity, args=(runner,), rounds=1, iterations=1
    )
    emit(result)
    pc = result.headline["perfect_coalescing_x"]
    zd = result.headline["zero_divergence_x"]
    # Perfect coalescing is a multiple-x bound, far above zero-divergence.
    assert pc > 2.0
    assert pc > zd
    # Eliminating divergence alone yields a large double-digit gain.
    assert 1.15 <= zd <= 2.5
    # Both bounds beat the baseline on every benchmark.
    for row in result.rows[:-1]:
        assert row[1] > 1.0
        assert row[2] > 1.0
