"""E-T1: regenerate Table I (MERB values for GDDR5).

The table must match the paper exactly — it is a pure function of the
Table II timing parameters.
"""

from repro.analysis.experiments import table1_merb
from repro.dram.timing import GDDR5_TIMING
from repro.mc.merb import merb_table

from conftest import emit


def test_table1_exact(benchmark):
    result = benchmark.pedantic(table1_merb, rounds=3, iterations=1)
    emit(result)
    values = {row[0]: row[1] for row in result.rows}
    assert values[1] == 31
    assert values[2] == 20
    assert values[3] == 10
    assert values[4] == 7
    assert values[5] == 5
    assert values["6-16"] == 5
    # §IV-D: streaming 31 hits to a single bank reaches ~62% utilization.
    assert abs(result.headline["single_bank_util_at_31"] - 0.62) < 0.005


def test_merb_computation_speed(benchmark):
    merb_table.cache_clear()
    benchmark(lambda: (merb_table.cache_clear(), merb_table(GDDR5_TIMING, 16)))
