"""E-F10: regenerate Fig. 10 (first-to-last reply gap per scheduler).

Paper: warp-group scheduling shrinks the per-warp divergence gap on every
benchmark; WG-M is the most effective where warps spread across many
controllers, while sad/nw/SS/bfs (fewer than 2 controllers per warp) are
already handled by per-controller WG.
"""

from repro.analysis.experiments import fig10_divergence

from conftest import emit


def test_fig10_divergence(runner, benchmark):
    result = benchmark.pedantic(
        fig10_divergence, args=(runner,), rounds=1, iterations=1
    )
    emit(result)
    h = result.headline
    # Warp-aware scheduling shrinks the divergence gap suite-wide.
    assert h["divergence_wg"] < h["divergence_gmc"]
    assert h["divergence_wg-m"] < h["divergence_gmc"]
    # Per-benchmark: a clear majority improves under WG.
    improved = sum(1 for row in result.rows[:-1] if row[2] < row[1])
    assert improved >= 8
