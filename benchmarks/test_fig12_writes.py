"""E-F12: regenerate Fig. 12 (write intensity / unit-size stalled groups).

Paper: nw, SS and sad are the write-intensive benchmarks; WG-W's
warp-aware write drain helps where both write intensity and the fraction
of unit-size warp-groups stalled by drains are high.
"""

from repro.analysis.experiments import fig12_writes

from conftest import emit

WRITE_HEAVY = ("nw", "SS", "sad", "PVC")
READ_MOSTLY = ("bfs", "bh", "spmv", "sssp")


def test_fig12_write_intensity(runner, benchmark):
    result = benchmark.pedantic(
        fig12_writes, args=(runner,), rounds=1, iterations=1
    )
    emit(result)
    wi = {row[0]: row[1] for row in result.rows}
    heavy = sum(wi[b] for b in WRITE_HEAVY) / len(WRITE_HEAVY)
    light = sum(wi[b] for b in READ_MOSTLY) / len(READ_MOSTLY)
    # The write-intensity split of Fig. 12 reproduces.
    assert heavy > 2.0 * light
    assert heavy > 0.10
    # Unit-size groups exist everywhere (what drains strand).
    for row in result.rows:
        assert row[2] > 0.1
