"""E-F9: regenerate Fig. 9 (effective main-memory latency of warps).

Paper: warp-group scheduling reduces the average effective latency (time
until a warp's last reply) — WG by 9.1% and WG-M by 16.9%; the
bandwidth-aware variants keep the reduction while restoring utilization.
"""

from repro.analysis.experiments import fig9_latency

from conftest import emit


def test_fig9_effective_latency(runner, benchmark):
    result = benchmark.pedantic(
        fig9_latency, args=(runner,), rounds=1, iterations=1
    )
    emit(result)
    h = result.headline
    # The full stack cuts average warp stall time vs the baseline.
    assert h["latency_reduction_wg-w"] > 0.0
    assert h["latency_reduction_wg-bw"] > 0.0
    # And no policy makes it dramatically worse.
    for key, value in h.items():
        assert value > -0.05, key
