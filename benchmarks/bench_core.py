#!/usr/bin/env python
"""Standalone driver for the core hot-path benchmark.

Equivalent to ``python -m repro bench`` (same flags, same report); kept
under ``benchmarks/`` so the perf harness lives next to the per-figure
benchmark suite.  Typical uses::

    # full grid (every registered scheduler, TINY + SMALL)
    python benchmarks/bench_core.py --out results/BENCH_core.json

    # CI regression gate against the committed reference
    python benchmarks/bench_core.py --quick \
        --baseline results/BENCH_core.json --check

See docs/performance.md for how to read the report.
"""

from __future__ import annotations

import sys


def main(argv: list[str] | None = None) -> int:
    from repro.__main__ import main as repro_main

    args = sys.argv[1:] if argv is None else argv
    return repro_main(["bench", *args])


if __name__ == "__main__":
    sys.exit(main())
