"""Ablation benches for the design choices and extensions DESIGN.md lists.

Not paper figures — these pin down the modeling decisions:

* refresh off (the paper's configuration) vs on: bounded overhead;
* TLB off (the paper's §V argument) vs small-TLB stress: page walks cost,
  and warp-aware scheduling keeps its edge with walks in the mix;
* WG-Share (the conclusion's future-work policy) does not regress WG-W;
* command-queue depth: the look-ahead the transaction scheduler needs.
"""

import dataclasses

import pytest

from repro.core.config import SimConfig
from repro.gpu.system import simulate
from repro.workloads.profiles import IRREGULAR_PROFILES
from repro.workloads.synthetic import synthetic_trace

from conftest import emit


def trace_for(cfg, name="bfs", warps=96, loads=6, seed=2):
    profile = dataclasses.replace(
        IRREGULAR_PROFILES[name], warps=warps, loads_per_warp=loads
    )
    return synthetic_trace(profile, cfg, seed=seed, scale=1.0)


@pytest.fixture(scope="module")
def base_cfg():
    return SimConfig()


def test_ablation_refresh_overhead(base_cfg, benchmark):
    trace = trace_for(base_cfg)
    ref = dataclasses.replace(
        base_cfg,
        dram_timing=dataclasses.replace(base_cfg.dram_timing, refresh_enabled=True),
    )

    def run():
        off = simulate(base_cfg, trace).ipc()
        on = simulate(ref, trace).ipc()
        return on / off

    ratio = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nrefresh on/off IPC ratio: {ratio:.4f}")
    # tRFC/tREFI = 4%: overhead must be bounded and not negative.
    assert 0.90 <= ratio <= 1.01


def test_ablation_tlb_with_warp_aware(base_cfg, benchmark):
    """§V claim: warp-aware scheduling keeps its benefit when TLB misses
    inject page-walk traffic."""
    tlb_cfg = dataclasses.replace(
        base_cfg, use_tlb=True,
        gpu=dataclasses.replace(base_cfg.gpu, tlb_entries=16),
    )
    trace = trace_for(base_cfg, name="spmv")

    def run():
        gmc = simulate(tlb_cfg.with_scheduler("gmc"), trace).ipc()
        wgw = simulate(tlb_cfg.with_scheduler("wg-w"), trace).ipc()
        return wgw / gmc

    speedup = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nWG-W speedup with TLB walks: {speedup:.4f}")
    assert speedup > 0.97  # no collapse under walk traffic


def test_ablation_wgshare_vs_wgw(base_cfg, benchmark):
    trace = trace_for(base_cfg, name="PVC")

    def run():
        wgw = simulate(base_cfg.with_scheduler("wg-w"), trace).ipc()
        share = simulate(base_cfg.with_scheduler("wg-share"), trace).ipc()
        return share / wgw

    ratio = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nWG-Share / WG-W IPC: {ratio:.4f}")
    assert ratio > 0.95  # future-work heuristic must not regress


def test_ablation_command_queue_depth(base_cfg, benchmark):
    trace = trace_for(base_cfg, name="cfd")

    def run():
        out = {}
        for depth in (2, 4, 16):
            cfg = dataclasses.replace(
                base_cfg,
                mc=dataclasses.replace(base_cfg.mc, command_queue_depth=depth),
            )
            out[depth] = simulate(cfg.with_scheduler("wg-w"), trace).ipc()
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nWG-W IPC by command-queue depth:", {k: round(v, 3) for k, v in out.items()})
    # All depths function; the default (4) is not the worst choice.
    assert min(out.values()) > 0
    assert out[4] >= min(out.values())
