"""E-CMP (§VI-C): prior schedulers vs the warp-aware stack.

Paper: SBWAS (best profiled alpha per benchmark) gains only ~2.5% over
the GMC; WAFCFS *loses* 11.2% (in-order warp servicing achieves almost no
row hits on irregular access streams); WG-W beats SBWAS by 7.3%.
"""

from repro.analysis.experiments import sec6c_comparison

from conftest import emit


def test_sec6c_prior_schedulers(runner, benchmark):
    result = benchmark.pedantic(
        sec6c_comparison, args=(runner,), rounds=1, iterations=1
    )
    emit(result)
    h = result.headline
    # WAFCFS loses against the throughput-optimized baseline.
    assert h["wafcfs_speedup"] < 1.0
    # SBWAS lands between WAFCFS and the full warp-aware stack.
    assert h["sbwas_speedup"] > h["wafcfs_speedup"]
    assert h["wgw_speedup"] > h["wafcfs_speedup"]
    # The ordering that matters: WG-W is the best-performing policy.
    assert h["wgw_speedup"] >= h["sbwas_speedup"] - 0.02
