"""Shared fixtures for the per-figure benchmark harness.

Every ``test_figNN_*``/``test_secN_*`` file regenerates one table or
figure of the paper from a shared (benchmark x scheduler) sweep.  The
sweep is computed once per session and cached on disk under
``benchmarks/.benchcache`` so the whole harness stays fast on re-runs.

Scale is ``TINY`` by default; set ``REPRO_BENCH_SCALE=quick|paper`` for
higher-fidelity runs (the shape assertions are scale-independent).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.runner import ExperimentRunner
from repro.workloads.suite import Scale

_SCALE = Scale[os.environ.get("REPRO_BENCH_SCALE", "tiny").upper()]
_CACHE = os.path.join(os.path.dirname(__file__), ".benchcache")


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner(
        scale=_SCALE, seeds=(1, 2), kind="synthetic", cache_dir=_CACHE
    )


@pytest.fixture(scope="session")
def scale() -> Scale:
    return _SCALE


def emit(result) -> None:
    """Print the regenerated table (visible with pytest -s)."""
    print()
    print(result)
