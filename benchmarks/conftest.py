"""Shared fixtures for the per-figure benchmark harness.

Every ``test_figNN_*``/``test_secN_*`` file regenerates one table or
figure of the paper from a shared (benchmark x scheduler) sweep.  The
sweep is computed once per session and cached on disk under
``benchmarks/.benchcache`` (entries keyed by a content hash of the full
``SimConfig``, so config changes invalidate automatically) and is filled
through the same resumable sweep harness as ``python -m repro sweep``.

Scale is ``TINY`` by default; set ``REPRO_BENCH_SCALE=quick|paper`` for
higher-fidelity runs (the shape assertions are scale-independent).  Set
``REPRO_BENCH_WORKERS=N`` to prefill the cache with N worker processes
before the figure tests run (0, the default, simulates lazily inline).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.runner import ExperimentRunner
from repro.analysis.sweep import run_sweep
from repro.workloads.suite import Scale

_SCALE = Scale[os.environ.get("REPRO_BENCH_SCALE", "tiny").upper()]
_CACHE = os.path.join(os.path.dirname(__file__), ".benchcache")
_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "0"))

#: The scheduler grid the figure files consume (§VI adds per-alpha SBWAS
#: configs, which hash to their own cache entries on demand).
_SCHEDULERS = ("gmc", "wg", "wg-m", "wg-bw", "wg-w", "wafcfs", "zero-div")


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    r = ExperimentRunner(
        scale=_SCALE, seeds=(1, 2), kind="synthetic", cache_dir=_CACHE
    )
    if _WORKERS > 0:
        from repro.workloads.profiles import ALL_PROFILES

        run_sweep(
            r, sorted(ALL_PROFILES), _SCHEDULERS,
            workers=_WORKERS, resume=True,
        ).raise_on_failure()
        run_sweep(
            r, sorted(ALL_PROFILES), ("gmc",), perfect=True,
            workers=_WORKERS, resume=True,
        ).raise_on_failure()
    return r


@pytest.fixture(scope="session")
def scale() -> Scale:
    return _SCALE


def pytest_sessionfinish(session, exitstatus):
    """Append a figure-harness session record to the run history.

    Each full run of the per-figure benchmark suite is one data point in
    the dashboard's trajectory: which scale it asserted the paper's
    shapes at, and whether everything held.  Skipped when the history is
    disabled (``REPRO_HISTORY=0``) or the session collected nothing.
    """
    if not getattr(session, "testscollected", 0):
        return
    from repro.history import record_run

    record_run(
        "benchmarks",
        {
            "scale": _SCALE.name,
            "workers": _WORKERS,
            "tests_collected": session.testscollected,
            "tests_failed": session.testsfailed,
            "exit_status": int(exitstatus),
        },
    )


def emit(result) -> None:
    """Print the regenerated table (visible with pytest -s)."""
    print()
    print(result)
