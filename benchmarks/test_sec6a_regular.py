"""E-ND (§VI-A): impact on non-divergent (regular) applications.

Paper: the warp-aware stack gives regular, bandwidth-bound workloads a
modest +1.8% with *no* application slowing down — the warp-group scoring
degenerates to row-hit streaming when warps issue one request each.
"""

from repro.analysis.experiments import sec6a_regular

from conftest import emit


def test_sec6a_regular_apps(runner, benchmark):
    result = benchmark.pedantic(
        sec6a_regular, args=(runner,), rounds=1, iterations=1
    )
    emit(result)
    # No meaningful slowdown on any regular benchmark (threshold
    # re-calibrated after the MERB depth-cap fix: worst case 0.970 at
    # TINY with seeds (1, 2) sits exactly on the old bound).
    assert result.headline["worst_case"] >= 0.965
    # ...and a neutral-to-positive overall effect.
    assert result.headline["regular_speedup"] >= 0.99
