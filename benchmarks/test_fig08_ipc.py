"""E-F8: regenerate Fig. 8 (IPC normalized to the GMC baseline).

Paper geomeans over the irregular suite: WG +3.4%, WG-M +6.2%,
WG-Bw +8.4%, WG-W +10.1%.  The shape claims asserted here: the full
warp-aware stack delivers a clear gain, and the bandwidth-aware variants
(WG-Bw/WG-W) beat plain warp-group scheduling.

Thresholds are calibrated at TINY scale with seeds (1, 2); they were
tightened around the buggy pre-depth-cap MERB gate (which overfilled
bank queues past ``command_queue_depth`` and inflated WG-Bw/WG-W) and
re-calibrated after the fix (best policy +2.1% at TINY; see
EXPERIMENTS.md).
"""

from repro.analysis.experiments import fig8_ipc

from conftest import emit


def test_fig8_normalized_ipc(runner, benchmark):
    result = benchmark.pedantic(fig8_ipc, args=(runner,), rounds=1, iterations=1)
    emit(result)
    h = result.headline
    # The headline result: the best policy wins by a clear margin.
    best = max(h["speedup_wg-bw"], h["speedup_wg-w"])
    assert best >= 1.015
    # Bandwidth awareness (MERB) adds over plain warp-group scheduling.
    assert h["speedup_wg-bw"] >= h["speedup_wg"]
    # Every proposed policy is at worst roughly baseline-neutral overall.
    for name in ("wg", "wg-m", "wg-bw", "wg-w"):
        assert h[f"speedup_{name}"] > 0.95
