"""E-PWR (§VI-B): GDDR5 power sensitivity to row-hit-rate changes.

Paper: WG-W's 16% lower row-buffer hit rate raises GDDR5 power by only
~1.8%, because I/O drivers — not the arrays — dominate GDDR5 power.
We assert the methodology's conclusion both on simulated runs and with
the calculator directly at the paper's exact -16% hit-rate point.
"""

from repro.analysis.experiments import sec6b_power
from repro.core.config import DRAMTimingConfig
from repro.dram.power import estimate_channel_power

from conftest import emit


def test_sec6b_energy_per_access(runner, benchmark):
    result = benchmark.pedantic(sec6b_power, args=(runner,), rounds=1, iterations=1)
    emit(result)
    # Energy per access moves by only a few percent between schedulers.
    assert abs(result.headline["mean_energy_delta"]) < 0.10


def test_paper_sensitivity_point(benchmark):
    """The paper's exact claim, via the calculator: 16% fewer row hits
    (19% more activates at fixed work) costs low-single-digit percent."""
    t = DRAMTimingConfig()

    def deltas():
        base = estimate_channel_power(
            activates=2000, reads=9000, writes=1000,
            data_bus_busy_ps=55_000_000, elapsed_ps=100_000_000, timing=t,
        )
        worse = estimate_channel_power(
            activates=int(2000 * 1.19), reads=9000, writes=1000,
            data_bus_busy_ps=55_000_000, elapsed_ps=100_000_000, timing=t,
        )
        return worse.total_w / base.total_w - 1.0

    delta = benchmark(deltas)
    assert 0.0 < delta < 0.06
