"""E-F2: regenerate Fig. 2 (coalescing efficiency of the irregular suite).

Paper: 56% of loads issue more than one memory request after coalescing;
the suite averages 5.9 requests per load.
"""

from repro.analysis.experiments import fig2_coalescing

from conftest import emit


def test_fig2_coalescing(runner, benchmark):
    result = benchmark.pedantic(
        fig2_coalescing, args=(runner,), rounds=1, iterations=1
    )
    emit(result)
    assert len(result.rows) == 12  # 11 irregular benchmarks + MEAN
    # Shape: a majority-divergent suite with several requests per load.
    assert 0.40 <= result.headline["frac_divergent"] <= 0.75
    assert 3.5 <= result.headline["requests_per_load"] <= 8.0
    # Every benchmark exhibits MAI (the Table III selection criterion).
    for row in result.rows[:-1]:
        assert row[2] > 1.0
