"""E-F11: regenerate Fig. 11 (DRAM bandwidth utilization).

Paper: prioritizing warp-groups interrupts row-hit streaks and costs
WG-M bandwidth; the MERB policy (WG-Bw) recovers it — >14% better
utilization than WG-M — by hiding row-miss overheads behind row hits in
other banks.
"""

from repro.analysis.experiments import fig11_bandwidth

from conftest import emit


def test_fig11_bandwidth_utilization(runner, benchmark):
    result = benchmark.pedantic(
        fig11_bandwidth, args=(runner,), rounds=1, iterations=1
    )
    emit(result)
    h = result.headline
    # The MERB governor improves utilization over plain WG-M...
    assert h["wgbw_over_wgm"] > 0.0
    assert h["bw_wg-bw"] > h["bw_wg-m"]
    # ...and WG-W does not burn the recovered bandwidth.
    assert h["bw_wg-w"] > h["bw_wg-m"] * 0.98
