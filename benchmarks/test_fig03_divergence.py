"""E-F3: regenerate Fig. 3 (extent of main-memory latency divergence).

Paper: a warp's last request completes at ~1.6x the latency of its first,
and a warp's requests touch 2.5 memory controllers on average.
"""

from repro.analysis.experiments import fig3_divergence

from conftest import emit


def test_fig3_divergence(runner, benchmark):
    result = benchmark.pedantic(
        fig3_divergence, args=(runner,), rounds=1, iterations=1
    )
    emit(result)
    # Significant main-memory latency divergence exists under the baseline.
    assert result.headline["last_over_first"] > 1.3
    # Warps spread across multiple controllers (motivates WG-M).
    assert 1.5 <= result.headline["channels_per_warp"] <= 3.5
    # The multi-controller benchmarks (cfd/sp/sssp/spmv) spread the most.
    by_name = {r[0]: r[2] for r in result.rows[:-1]}
    multi = (by_name["cfd"] + by_name["sp"] + by_name["sssp"] + by_name["spmv"]) / 4
    few = (by_name["sad"] + by_name["nw"] + by_name["SS"] + by_name["bfs"]) / 4
    assert multi > few
